"""Command-line interface: ``python -m repro <command>``.

Small, reproducible demonstrations of the package's main pipelines:

``info``
    Package, model, and inventory summary.
``demo``
    The quickstart table — a butterfly permutation at several ``B``.
``butterfly``
    The Section 3.1 randomized q-relation router, round by round.
``schedule``
    The Theorem 2.1.6 LLL schedule pipeline on a random leveled workload.
``hard-instance``
    Build and route the Theorem 2.2.1 instance; compare with the bound.
``spacetime``
    Worm spacetime diagram of a small contended run.
``profile``
    Instrument a workload with the :mod:`repro.telemetry` collectors and
    print the utilization / occupancy / stall-blame report.
``sweep``
    Run a (simulator, workload, B, seed) trial grid through
    :mod:`repro.sim.sweep` — optionally parallel and result-cached.
``bench``
    Time the batched lockstep sweep path against the per-trial path
    (plus the perf microbenchmarks) and record ``BENCH_sim.json``.
``serve``
    Run the :mod:`repro.service` asyncio trial server (dynamic request
    batching, bounded admission, graceful drain on SIGINT/SIGTERM).
``loadgen``
    Drive a running server with concurrent traffic, verify every
    response bit-identical to a serial replay, and record
    ``BENCH_service.json``.

Every command accepts ``--seed`` and prints deterministic output.
"""

from __future__ import annotations

import argparse
from collections.abc import Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Cole, Maggs & Sitaraman: On the Benefit of "
            "Supporting Virtual Channels in Wormhole Routers (SPAA 1996)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package and model summary")

    p = sub.add_parser("demo", help="quickstart: butterfly permutation vs B")
    p.add_argument("--n", type=int, default=8, help="butterfly inputs")
    p.add_argument("--length", type=int, default=16, help="flits per message")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("butterfly", help="Section 3.1 q-relation router")
    p.add_argument("--n", type=int, default=64)
    p.add_argument("--q", type=int, default=4)
    p.add_argument("--channels", type=int, default=2, help="B")
    p.add_argument("--length", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("schedule", help="Theorem 2.1.6 schedule pipeline")
    p.add_argument("--width", type=int, default=10)
    p.add_argument("--depth", type=int, default=10)
    p.add_argument("--messages", type=int, default=120)
    p.add_argument("--length", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("hard-instance", help="Theorem 2.2.1 lower bound")
    p.add_argument("--congestion", type=int, default=8, help="C")
    p.add_argument("--dilation", type=int, default=15, help="D")
    p.add_argument("--channels", type=int, default=1, help="B")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("spacetime", help="worm spacetime diagram")
    p.add_argument("--worms", type=int, default=3)
    p.add_argument("--depth", type=int, default=4)
    p.add_argument("--length", type=int, default=5)
    p.add_argument("--channels", type=int, default=1, help="B")

    p = sub.add_parser(
        "profile",
        help="telemetry report (utilization, occupancy, stall blame)",
    )
    p.add_argument(
        "--workload",
        choices=("hard-instance", "demo", "schedule"),
        default="hard-instance",
        help="what to instrument (default: the Theorem 2.2.1 instance)",
    )
    p.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help="instrument a registered adversarial scenario instead of "
        "--workload",
    )
    p.add_argument(
        "--artifact",
        default=None,
        metavar="PATH",
        help="instrument the case stored in a fuzz repro artifact "
        "instead of --workload",
    )
    p.add_argument("--congestion", type=int, default=8, help="C (hard-instance)")
    p.add_argument("--dilation", type=int, default=15, help="D (hard-instance)")
    p.add_argument("--channels", type=int, default=1, help="B")
    p.add_argument("--n", type=int, default=8, help="butterfly inputs (demo)")
    p.add_argument(
        "--length", type=int, default=0, help="flits per message (0 = auto)"
    )
    p.add_argument("--top", type=int, default=5, help="rows per report table")
    p.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="also record an event trace to PATH (.jsonl or .npz)",
    )
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "sweep",
        help="run a (simulator, workload, B, seed) trial grid, "
        "optionally in parallel and cached",
    )
    p.add_argument(
        "--workload",
        default="chain-bundle",
        help="registered workload name (layered, hard-instance, "
        "chain-bundle, butterfly-bitrev, mesh-permutation)",
    )
    p.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VAL",
        help="workload parameter override (repeatable)",
    )
    p.add_argument(
        "--simulators",
        default="wormhole,cut_through,store_forward",
        help="comma-separated simulator names",
    )
    p.add_argument(
        "--channels", default="1,2,4", help="comma-separated B values"
    )
    p.add_argument(
        "--length", type=int, default=0, help="flits per message (0 = auto)"
    )
    p.add_argument("--repeats", type=int, default=1, help="trials per cell")
    p.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes (0 = serial; results are identical)",
    )
    p.add_argument(
        "--backend",
        choices=("inline", "thread", "process"),
        default=None,
        help="execution backend (default: process when --workers >= 2, "
        "inline otherwise; results are identical)",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        help="reuse/populate a per-trial result cache in this directory",
    )
    p.add_argument(
        "--force", action="store_true", help="recompute cached trials"
    )
    p.add_argument(
        "--batch-size",
        default="auto",
        help="trials per lockstep batch, for every flit-level router "
        "('auto', or a positive integer; 1 disables batching — results "
        "are identical either way)",
    )
    p.add_argument(
        "--dry-run",
        action="store_true",
        help="print the packed batch plan (cells per batch, cache hits) "
        "without executing any trial",
    )
    p.add_argument("--seed", type=int, default=0, help="root seed")

    p = sub.add_parser(
        "bench",
        help="benchmark batched vs serial sweep execution; "
        "write machine-readable results",
    )
    p.add_argument(
        "--output",
        default=None,
        help="result file (default BENCH_sim.json, or BENCH_exec.json "
        "with --backend)",
    )
    p.add_argument(
        "--repeats",
        type=int,
        default=30,
        help="trials per (B,) grid cell (default 30)",
    )
    p.add_argument(
        "--quick",
        action="store_true",
        help="small grid, skip microbenchmarks (CI smoke)",
    )
    p.add_argument(
        "--no-micro",
        action="store_true",
        help="skip the pytest perf microbenchmarks",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for both timed paths (0 = serial)",
    )
    p.add_argument(
        "--backend",
        action="store_true",
        help="compare execution backends (inline vs thread vs process) "
        "on one grid instead of batched-vs-serial; writes BENCH_exec.json",
    )
    p.add_argument(
        "--cluster",
        action="store_true",
        help="benchmark the sharded service tier (throughput at "
        "1/2/4 workers + cache hit rate); writes BENCH_cluster.json",
    )
    p.add_argument(
        "--estimate",
        action="store_true",
        help="benchmark the analytic estimator against exact trials "
        "(latency + envelope tightness per model); writes "
        "BENCH_estimate.json",
    )
    p.add_argument("--seed", type=int, default=0, help="root seed")

    p = sub.add_parser(
        "serve",
        help="run the asyncio trial service (dynamic batching, "
        "backpressure, graceful drain)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7654, help="0 = ephemeral")
    p.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="admission queue depth; a full queue rejects with Retry-After",
    )
    p.add_argument(
        "--max-batch",
        type=int,
        default=32,
        help="max compatible trials per lockstep batch",
    )
    p.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="max time the oldest queued request waits for batch company",
    )
    p.add_argument(
        "--backend",
        choices=("inline", "thread", "process"),
        default="thread",
        help="batch execution backend (process = fault-isolated workers "
        "with crash recovery)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker threads/processes for the batch backend",
    )
    p.add_argument(
        "--batch-timeout-s",
        type=float,
        default=None,
        help="per-batch execution timeout (process backend only)",
    )
    p.add_argument(
        "--port-file",
        default=None,
        metavar="PATH",
        help="write the bound port here once listening (pairs with "
        "--port 0; how a supervisor finds an ephemeral-port worker)",
    )

    p = sub.add_parser(
        "cluster",
        help="sharded multi-worker service tier: consistent-hash router "
        "over supervised workers with a shared result cache",
    )
    csub = p.add_subparsers(dest="cluster_command", required=True)
    pc = csub.add_parser(
        "serve",
        help="run a v1-protocol router fronting N supervised "
        "'repro serve' worker processes",
    )
    pc.add_argument("--host", default="127.0.0.1")
    pc.add_argument("--port", type=int, default=7900, help="0 = ephemeral")
    pc.add_argument(
        "--workers", type=int, default=2, help="worker service processes"
    )
    pc.add_argument(
        "--cache-dir",
        default=None,
        help="shared cross-worker result cache directory "
        "(default: fresh per-tier tempdir)",
    )
    pc.add_argument(
        "--queue-limit", type=int, default=64, help="per-worker queue depth"
    )
    pc.add_argument(
        "--max-batch",
        type=int,
        default=32,
        help="per-worker max compatible trials per lockstep batch",
    )
    pc.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="per-worker max wait for batch company",
    )
    pc.add_argument(
        "--backend",
        choices=("inline", "thread", "process"),
        default="thread",
        help="execution backend inside each worker process",
    )
    pc.add_argument(
        "--backend-workers",
        type=int,
        default=1,
        help="threads/processes inside each worker's backend",
    )
    pc.add_argument(
        "--runtime-dir",
        default=None,
        help="port files + worker logs (default: tempdir)",
    )

    p = sub.add_parser(
        "loadgen",
        help="drive a running trial server; verify bit-exactness against "
        "serial replays; write BENCH_service.json",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7654)
    p.add_argument(
        "--workload", default="chain-bundle", help="registered workload name"
    )
    p.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help="replay a registered adversarial scenario instead of "
        "--workload (arrival-trace scenarios also pace the request "
        "stream)",
    )
    p.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VAL",
        help="workload parameter override (repeatable)",
    )
    p.add_argument(
        "--channels", default="1,2,4", help="comma-separated B values to cycle"
    )
    p.add_argument(
        "--length", type=int, default=0, help="flits per message (0 = auto)"
    )
    p.add_argument(
        "--simulators",
        default=None,
        help="comma-separated simulators to cycle (multi-key traffic "
        "for a sharded tier; default: wormhole only)",
    )
    p.add_argument(
        "--lengths",
        default=None,
        help="comma-separated message lengths to cycle (multi-key "
        "traffic; overrides --length)",
    )
    p.add_argument("--requests", type=int, default=32, help="total requests")
    p.add_argument(
        "--concurrency", type=int, default=8, help="concurrent connections"
    )
    p.add_argument(
        "--rate",
        type=float,
        default=0.0,
        help="aggregate request rate in req/s (0 = as fast as possible)",
    )
    p.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request queueing deadline",
    )
    p.add_argument(
        "--mode",
        default="exact",
        choices=("exact", "estimate"),
        help="request mode: 'exact' runs trials through the batcher, "
        "'estimate' asks for the analytic delay envelope (verified "
        "against the local estimator instead of a serial replay)",
    )
    p.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the serial-replay bit-exactness check",
    )
    p.add_argument(
        "--shutdown",
        action="store_true",
        help="send a graceful-shutdown op to the server when done",
    )
    p.add_argument(
        "--output",
        default="BENCH_service.json",
        help="result file (default BENCH_service.json)",
    )
    p.add_argument("--seed", type=int, default=0, help="root seed")

    p = sub.add_parser(
        "scenario",
        help="adversarial scenario library: curated hard cases with "
        "declared invariant expectations",
    )
    ssub = p.add_subparsers(dest="scenario_command", required=True)
    ssub.add_parser("list", help="registered scenarios, one line each")
    ps = ssub.add_parser("show", help="one scenario's parameters and checks")
    ps.add_argument("name", help="scenario name (see 'repro scenario list')")
    pr = ssub.add_parser(
        "run", help="build and simulate a scenario; verify its expectations"
    )
    pr.add_argument("name", help="scenario name (see 'repro scenario list')")
    pr.add_argument(
        "--model",
        default=None,
        help="model to run under (default: the scenario's first declared)",
    )
    pr.add_argument(
        "--channels", default="1,2,4", help="comma-separated B values"
    )
    pr.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VAL",
        help="builder parameter override (repeatable)",
    )
    pr.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "fuzz",
        help="seeded cross-model invariant fuzzer; writes a shrunk "
        "replayable artifact per violation",
    )
    p.add_argument("--rounds", type=int, default=50, help="cases to generate")
    p.add_argument("--seed", type=int, default=0, help="root seed")
    p.add_argument(
        "--families",
        default=None,
        help="comma-separated case families (default: all; see "
        "repro.fuzz.FAMILIES)",
    )
    p.add_argument(
        "--artifact-dir",
        default="fuzz-artifacts",
        help="where violation repro artifacts are written",
    )
    p.add_argument(
        "--replay",
        metavar="PATH",
        default=None,
        help="re-run the exact case stored in a repro artifact instead "
        "of fuzzing",
    )

    p = sub.add_parser(
        "experiment",
        help="regenerate one of the paper experiments (e1..e18, perf)",
    )
    p.add_argument("name", help="experiment id, e.g. e2 or e11")

    sub.add_parser(
        "reproduce",
        help="run every experiment and assemble benchmarks/results/ALL_RESULTS.txt",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "info": _cmd_info,
        "demo": _cmd_demo,
        "butterfly": _cmd_butterfly,
        "schedule": _cmd_schedule,
        "hard-instance": _cmd_hard_instance,
        "spacetime": _cmd_spacetime,
        "profile": _cmd_profile,
        "sweep": _cmd_sweep,
        "bench": _cmd_bench,
        "serve": _cmd_serve,
        "cluster": _cmd_cluster,
        "loadgen": _cmd_loadgen,
        "scenario": _cmd_scenario,
        "fuzz": _cmd_fuzz,
        "experiment": _cmd_experiment,
        "reproduce": _cmd_reproduce,
    }[args.command]
    handler(args)
    return 0


def _cmd_info(args: argparse.Namespace) -> None:
    import repro

    print(f"repro {repro.__version__}")
    print(
        "Model (Section 1.1): B virtual channels per edge; the buffer at "
        "each edge's head holds B flits,\neach from a distinct message; "
        "one flit per virtual channel crosses per flit step; a blocked "
        "header\nstalls its whole worm."
    )
    print()
    print("Main entry points:")
    for name in (
        "WormholeSimulator",
        "lll_schedule / execute_schedule",
        "build_hard_instance",
        "ButterflyRouter",
        "CutThroughSimulator / StoreForwardSimulator",
        "circuit_switch_butterfly",
        "ContinuousWormholeSimulator",
    ):
        print(f"  - repro.{name}")
    print()
    print("See DESIGN.md for the system inventory, EXPERIMENTS.md for results.")


def _cmd_demo(args: argparse.Namespace) -> None:
    from repro import Butterfly, Table, WormholeSimulator, bit_reversal_permutation

    bf = Butterfly(args.n)
    inst = bit_reversal_permutation(args.n)
    paths = [list(r) for r in bf.path_edges_batch(inst.sources, inst.dests)]
    table = Table(
        f"Bit-reversal on an {args.n}-input butterfly (L={args.length})",
        ["B", "makespan", "blocked flit steps"],
    )
    for B in (1, 2, 4):
        res = WormholeSimulator(bf, B, seed=args.seed).run(paths, args.length)
        table.add_row([B, res.makespan, res.total_blocked_steps])
    print(table.render())


def _cmd_butterfly(args: argparse.Namespace) -> None:
    from repro import ButterflyRouter, Table, bounds, random_q_relation

    inst = random_q_relation(args.n, args.q, np.random.default_rng(args.seed))
    router = ButterflyRouter(
        args.n, B=args.channels, message_length=args.length, seed=args.seed
    )
    out = router.route(inst)
    table = Table(
        f"Section 3.1 router: n={args.n}, q={args.q}, B={args.channels}, "
        f"L={args.length}",
        ["round", "candidates", "survivors", "remaining"],
    )
    for r in out.rounds:
        table.add_row(
            [r.round_index, r.num_candidates, r.num_survivors, r.originals_remaining]
        )
    print(table.render())
    print(
        f"total: {out.total_flit_steps} flit steps "
        f"(Thm 3.1.1 form: "
        f"{bounds.butterfly_upper_bound(args.length, args.q, args.n, args.channels):.0f}); "
        f"all delivered: {out.all_delivered}"
    )


def _cmd_schedule(args: argparse.Namespace) -> None:
    from repro import Table, execute_schedule, lll_schedule
    from repro.network.random_networks import layered_network, random_walk_paths
    from repro.routing.paths import congestion, dilation, paths_from_node_walks

    rng = np.random.default_rng(args.seed)
    net = layered_network(args.width, args.depth, 3, rng)
    walks = random_walk_paths(net, args.width, args.depth, args.messages, rng)
    paths = paths_from_node_walks(net, walks)
    table = Table(
        f"LLL schedules: C={congestion(paths)}, D={dilation(paths)}, "
        f"L={args.length}, {args.messages} messages",
        ["B", "classes", "makespan", "blocked"],
    )
    for B in (1, 2, 4):
        build = lll_schedule(
            paths, args.length, B=B, rng=np.random.default_rng(B), mode="direct"
        )
        res = execute_schedule(net, paths, build.schedule, B=B)
        table.add_row([B, build.num_classes, res.makespan, res.total_blocked_steps])
    print(table.render())


def _cmd_hard_instance(args: argparse.Namespace) -> None:
    from repro import (
        WormholeSimulator,
        build_hard_instance,
        hard_instance_lower_bound,
    )

    inst = build_hard_instance(
        C=args.congestion, D=args.dilation, B=args.channels
    )
    L = inst.recommended_length()
    res = WormholeSimulator(inst.network, args.channels, seed=args.seed).run(
        inst.paths, message_length=L
    )
    print(
        f"Theorem 2.2.1 instance: M'={inst.m_prime}, M={inst.num_messages}, "
        f"C={inst.congestion}, D={inst.dilation}, B={inst.B}, L={L}"
    )
    print(f"greedy routing time : {res.makespan} flit steps")
    print(f"Omega bound (L-D)M/B: {hard_instance_lower_bound(inst, L):.0f}")


def _cmd_spacetime(args: argparse.Namespace) -> None:
    from repro.analysis.render import render_spacetime
    from repro.network.random_networks import chain_bundle
    from repro.routing.paths import paths_from_node_walks
    from repro.sim.wormhole import WormholeSimulator
    from repro.telemetry import TraceSnapshotCollector

    net, walks = chain_bundle(1, args.depth, args.worms)
    paths = paths_from_node_walks(net, walks)
    snapshot = TraceSnapshotCollector()
    WormholeSimulator(net, args.channels, priority="index").run(
        paths, message_length=args.length, telemetry=[snapshot]
    )
    print(
        f"{args.worms} worms (L={args.length}) sharing a {args.depth}-edge "
        f"chain at B={args.channels}:"
    )
    print(
        render_spacetime(
            snapshot.matrix, [args.depth] * args.worms, args.length
        )
    )


def _cmd_profile(args: argparse.Namespace) -> None:
    from repro.telemetry import (
        TraceRecorder,
        Watchdog,
        render_report,
        standard_collectors,
    )

    probes = standard_collectors() + [Watchdog()]
    recorder = None
    if args.trace is not None:
        recorder = TraceRecorder()
        probes.append(recorder)

    from repro import WormholeSimulator

    if args.scenario is not None and args.artifact is not None:
        raise SystemExit(
            "repro profile: choose --scenario or --artifact, not both"
        )
    if args.scenario is not None:
        result, title = _profile_scenario(args, probes)
    elif args.artifact is not None:
        result, title = _profile_artifact(args, probes)
    elif args.workload == "hard-instance":
        from repro import build_hard_instance

        inst = build_hard_instance(
            C=args.congestion, D=args.dilation, B=args.channels
        )
        L = args.length or inst.recommended_length()
        result = WormholeSimulator(
            inst.network, args.channels, seed=args.seed
        ).run(inst.paths, message_length=L, telemetry=probes)
        title = (
            f"Theorem 2.2.1 hard instance: C={inst.congestion}, "
            f"D={inst.dilation}, B={inst.B}, L={L}"
        )
    elif args.workload == "demo":
        from repro import Butterfly, bit_reversal_permutation

        bf = Butterfly(args.n)
        inst = bit_reversal_permutation(args.n)
        paths = [list(r) for r in bf.path_edges_batch(inst.sources, inst.dests)]
        L = args.length or 16
        result = WormholeSimulator(bf, args.channels, seed=args.seed).run(
            paths, message_length=L, telemetry=probes
        )
        title = (
            f"Bit-reversal on an {args.n}-input butterfly: "
            f"B={args.channels}, L={L}"
        )
    else:  # schedule
        from repro import execute_schedule, lll_schedule
        from repro.network.random_networks import (
            layered_network,
            random_walk_paths,
        )
        from repro.routing.paths import paths_from_node_walks

        rng = np.random.default_rng(args.seed)
        net = layered_network(10, 10, 3, rng)
        walks = random_walk_paths(net, 10, 10, 120, rng)
        paths = paths_from_node_walks(net, walks)
        L = args.length or 10
        build = lll_schedule(
            paths, L, B=args.channels,
            rng=np.random.default_rng(args.seed), mode="direct",
        )
        result = execute_schedule(
            net, paths, build.schedule, B=args.channels, telemetry=probes
        )
        title = (
            f"Theorem 2.1.6 schedule: {build.num_classes} classes, "
            f"B={args.channels}, L={L}"
        )

    print(render_report(probes, result, top=args.top, title=title))
    if recorder is not None:
        try:
            recorder.save(args.trace)
        except OSError as exc:
            raise SystemExit(f"repro profile: cannot write trace: {exc}")
        print(f"trace written to {args.trace}")


def _profile_scenario(args: argparse.Namespace, probes):
    """Instrument a registered scenario run for the profile report."""
    from repro.network.graph import NetworkError
    from repro.scenarios import get_scenario

    try:
        scen = get_scenario(args.scenario)
    except NetworkError as exc:
        raise SystemExit(f"repro profile: {exc}")
    model = next(
        (
            m
            for m in scen.models
            if m in ("wormhole", "cut_through", "store_forward", "adaptive")
        ),
        None,
    )
    if model is None:
        raise SystemExit(
            f"repro profile: scenario {args.scenario!r} has no "
            f"telemetry-capable model (declared: {', '.join(scen.models)})"
        )
    try:
        run = scen.run(
            B=args.channels, model=model, seed=args.seed, telemetry=probes
        )
    except NetworkError as exc:
        raise SystemExit(f"repro profile: {exc}")
    if not run.ok:
        for v in run.violations:
            print(f"WARNING expectation violated: {v.detail}")
    title = (
        f"scenario {scen.name} ({scen.theorem}): "
        f"model={model}, B={args.channels}"
    )
    return run.outcome, title


def _profile_artifact(args: argparse.Namespace, probes):
    """Instrument the routed case stored in a fuzz repro artifact."""
    import json
    from pathlib import Path

    from repro.facade import simulate
    from repro.fuzz.fuzzer import case_from_artifact

    try:
        payload = json.loads(Path(args.artifact).read_text())
    except (OSError, ValueError) as exc:
        raise SystemExit(f"repro profile: cannot read artifact: {exc}")
    case = case_from_artifact(payload)
    if not case.paths:
        raise SystemExit(
            "repro profile: continuous-family artifacts carry no routed "
            "paths to instrument"
        )
    result = simulate(
        (case.network, case.paths),
        model="wormhole",
        B=case.channels[0],
        message_length=case.message_length,
        seed=case.sim_seed,
        priority=case.priority,
        telemetry=probes,
        max_steps=200_000,
    )
    return result, f"fuzz artifact: {case.describe()}"


def _cmd_scenario(args: argparse.Namespace) -> None:
    from repro import Table
    from repro.network.graph import NetworkError
    from repro.scenarios import SCENARIOS, get_scenario

    if args.scenario_command == "list":
        table = Table(
            f"{len(SCENARIOS)} registered scenarios",
            ["name", "family", "kind", "models", "stresses"],
        )
        for name in sorted(SCENARIOS):
            s = SCENARIOS[name]
            table.add_row(
                [s.name, s.family, s.kind, ",".join(s.models), s.theorem]
            )
        print(table.render())
        return

    try:
        scen = get_scenario(args.name)
    except NetworkError as exc:
        raise SystemExit(f"repro scenario: {exc}")

    if args.scenario_command == "show":
        print(f"{scen.name}  [{scen.family} / {scen.kind}]")
        print(f"stresses: {scen.theorem}")
        print(f"models:   {', '.join(scen.models)}")
        print()
        print(scen.description)
        print()
        print("parameters (defaults):")
        for k, v in scen.defaults().items():
            print(f"  {k} = {v}")
        case = scen.build_case()
        print("expectations:")
        for label, _ in case.checks:
            print(f"  - {label}")
        return

    # run
    try:
        params = dict(_parse_param(p) for p in args.param)
        channels = [int(b) for b in args.channels.split(",") if b.strip()]
        if not channels:
            raise SystemExit(
                "repro scenario: --channels must name at least one B"
            )
        runs = [
            scen.run(B=B, model=args.model, seed=args.seed, **params)
            for B in channels
        ]
    except NetworkError as exc:
        raise SystemExit(f"repro scenario: {exc}")
    columns = sorted({k for r in runs for k in r.summary()})
    table = Table(
        f"scenario {scen.name}: model={runs[0].model}, "
        f"stresses {scen.theorem}",
        ["B", *columns, "checks", "verdict"],
    )
    for r in runs:
        summary = r.summary()
        table.add_row(
            [
                r.B,
                *[summary.get(c, "-") for c in columns],
                len(r.checked),
                "ok" if r.ok else f"{len(r.violations)} VIOLATED",
            ]
        )
    print(table.render())
    info = runs[0].case.info
    if info:
        print(
            "case: "
            + ", ".join(f"{k}={v}" for k, v in sorted(info.items()))
        )
    bad = [v for r in runs for v in r.violations]
    if bad:
        for v in bad:
            print(f"VIOLATION [{v.invariant}] {v.detail}")
        raise SystemExit(
            f"repro scenario: {len(bad)} expectation(s) violated"
        )


def _cmd_fuzz(args: argparse.Namespace) -> None:
    from repro.fuzz import replay_artifact, run_fuzz
    from repro.network.graph import NetworkError

    if args.replay is not None:
        try:
            violations = replay_artifact(args.replay)
        except (OSError, ValueError, KeyError, NetworkError) as exc:
            raise SystemExit(f"repro fuzz: cannot replay: {exc}")
        if not violations:
            print(f"replay of {args.replay}: clean (violation not reproduced)")
            return
        for v in violations:
            print(f"VIOLATION [{v.invariant}] {v.detail}")
        raise SystemExit(
            f"repro fuzz: replay reproduced {len(violations)} violation(s)"
        )

    families = None
    if args.families:
        families = tuple(
            f.strip() for f in args.families.split(",") if f.strip()
        )
    try:
        report = run_fuzz(
            args.rounds,
            seed=args.seed,
            families=families,
            artifact_dir=args.artifact_dir,
        )
    except NetworkError as exc:
        raise SystemExit(f"repro fuzz: {exc}")
    mix = ", ".join(
        f"{k}={v}" for k, v in sorted(report.cases_by_family.items())
    )
    print(
        f"fuzz: {report.rounds} rounds from seed {report.seed} ({mix})"
    )
    if report.ok:
        print("all invariants held")
        return
    for path, payload in zip(report.artifact_paths, report.failures):
        for v in payload["violations"]:
            print(f"VIOLATION [{v['invariant']}] {v['detail']}")
        print(f"  shrunk repro artifact: {path}")
    raise SystemExit(
        f"repro fuzz: {len(report.failures)} case(s) violated invariants"
    )


def _parse_param(text: str):
    """``KEY=VAL`` with VAL coerced to int, then float, then str."""
    if "=" not in text:
        raise SystemExit(f"repro sweep: --param needs KEY=VAL, got {text!r}")
    key, raw = text.split("=", 1)
    for cast in (int, float):
        try:
            return key, cast(raw)
        except ValueError:
            pass
    return key, raw


def _cmd_sweep(args: argparse.Namespace) -> None:
    from repro import Table
    from repro.sim.sweep import WORKLOADS, run_sweep, sweep_grid

    if args.workload not in WORKLOADS:
        raise SystemExit(
            f"repro sweep: unknown workload {args.workload!r}; "
            f"available: {', '.join(sorted(WORKLOADS))}"
        )
    workload_params = dict(_parse_param(p) for p in args.param)
    simulators = [s.strip() for s in args.simulators.split(",") if s.strip()]
    channels = [int(b) for b in args.channels.split(",") if b.strip()]
    specs = sweep_grid(
        args.workload,
        simulators,
        channels,
        workload_params=workload_params,
        message_length=args.length or None,
        repeats=args.repeats,
    )
    if args.batch_size == "auto":
        batch_size = None
    else:
        try:
            batch_size = int(args.batch_size)
        except ValueError:
            raise SystemExit(
                f"repro sweep: --batch-size must be 'auto' or a positive "
                f"integer, got {args.batch_size!r}"
            ) from None
        if batch_size < 1:
            raise SystemExit(
                "repro sweep: --batch-size must be >= 1"
            )
    if args.dry_run:
        _sweep_dry_run(specs, args.seed, batch_size, args.cache_dir, args.force)
        return
    out = run_sweep(
        specs,
        root_seed=args.seed,
        workers=args.workers,
        cache_dir=args.cache_dir,
        force=args.force,
        batch_size=batch_size,
        backend=args.backend,
    )

    params = ", ".join(f"{k}={v}" for k, v in sorted(workload_params.items()))
    title = f"sweep: {args.workload}" + (f" ({params})" if params else "")
    columns = ["simulator", "B", "repeat", "L", "makespan", "blocked", "delivered", "cached"]
    table = Table(title, columns)
    for t in out:
        m = t.metrics
        table.add_row(
            [
                t.spec.simulator,
                t.spec.B,
                t.spec.repeat,
                m["message_length"],
                m["makespan"],
                m["blocked"],
                f"{m['delivered']}/{m['messages']}",
                "yes" if t.cached else "no",
            ]
        )
    print(table.render())
    executed = len(out) - out.num_cached
    print(
        f"{len(out)} trials ({out.num_cached} cached, {executed} executed) "
        f"in {out.wall_time:.2f}s with "
        f"{args.workers if args.workers >= 2 else 1} worker(s); "
        f"root seed {out.root_seed}"
    )


def _sweep_dry_run(specs, root_seed, batch_size, cache_dir, force) -> None:
    """Print the packed batch plan without executing any trial."""
    from pathlib import Path

    from repro import Table
    from repro.sim.sweep import DEFAULT_BATCH_SIZE, _cache_load, _pack_units

    if batch_size is None:
        batch_size = DEFAULT_BATCH_SIZE
    cache_path = Path(cache_dir) if cache_dir is not None else None
    cached = 0
    pending = []
    for i, spec in enumerate(specs):
        if cache_path is not None and not force:
            entry = cache_path / f"{spec.cache_key(root_seed)}.json"
            if _cache_load(entry, spec.key()) is not None:
                cached += 1
                continue
        pending.append(i)
    units = _pack_units(specs, pending, root_seed, batch_size)
    table = Table(
        f"sweep plan (dry run, batch size {batch_size})",
        ["unit", "kind", "simulator", "workload", "trials", "B values"],
    )
    batches = singles = 0
    by_model: dict[str, list[int]] = {}
    for n, (unit, idxs) in enumerate(units):
        kind = unit[0]
        spec0 = specs[idxs[0]]
        counts = by_model.setdefault(spec0.simulator, [0, 0])
        if kind == "batch":
            batches += 1
            counts[0] += 1
        else:
            singles += 1
            counts[1] += 1
        table.add_row(
            [
                n,
                "lockstep" if kind == "batch" else "single",
                spec0.simulator,
                spec0.workload,
                len(idxs),
                ",".join(str(specs[i].B) for i in idxs),
            ]
        )
    print(table.render())
    for sim in sorted(by_model):
        nb, ns = by_model[sim]
        parts = []
        if nb:
            parts.append(f"{nb} lockstep batch(es)")
        if ns:
            parts.append(f"{ns} single(s)")
        print(f"  {sim}: {' + '.join(parts)}")
    print(
        f"{len(specs)} trials: {cached} cache hits, {len(pending)} to "
        f"execute in {batches} lockstep batch(es) + {singles} single(s); "
        f"nothing executed (dry run)"
    )


def _cmd_serve(args: argparse.Namespace) -> None:
    import asyncio

    from repro.service import ServiceConfig, serve

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        queue_limit=args.queue_limit,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        backend=args.backend,
        workers=args.workers,
        batch_timeout_s=args.batch_timeout_s,
        port_file=args.port_file,
    )
    try:
        asyncio.run(serve(config))
    except KeyboardInterrupt:
        pass  # signal handler already drained; double-^C lands here


def _cmd_cluster(args: argparse.Namespace) -> None:
    import asyncio

    from repro.cluster import (
        ClusterConfig,
        ClusterWorkerConfig,
        serve_cluster,
    )

    worker = ClusterWorkerConfig(
        workers=args.workers,
        host=args.host,
        queue_limit=args.queue_limit,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        backend=args.backend,
        backend_workers=args.backend_workers,
        runtime_dir=args.runtime_dir,
    )
    config = ClusterConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_dir=args.cache_dir,
        worker=worker,
    )
    try:
        asyncio.run(serve_cluster(config))
    except KeyboardInterrupt:
        pass  # signal handler already drained; double-^C lands here


def _cmd_loadgen(args: argparse.Namespace) -> None:
    import asyncio
    import json
    from pathlib import Path

    from repro.service import LoadgenConfig, run_loadgen

    channels = tuple(int(b) for b in args.channels.split(",") if b.strip())
    if not channels:
        raise SystemExit("repro loadgen: --channels must name at least one B")
    if args.scenario is not None:
        from repro.network.graph import NetworkError
        from repro.scenarios import get_scenario

        try:
            get_scenario(args.scenario)
        except NetworkError as exc:
            raise SystemExit(f"repro loadgen: {exc}")
    simulators = tuple(
        s.strip() for s in (args.simulators or "").split(",") if s.strip()
    )
    lengths = tuple(
        int(v) for v in (args.lengths or "").split(",") if v.strip()
    )
    config = LoadgenConfig(
        workload=args.workload,
        workload_params=dict(_parse_param(p) for p in args.param),
        scenario=args.scenario,
        channels=channels,
        simulators=simulators,
        lengths=lengths,
        message_length=args.length or None,
        requests=args.requests,
        concurrency=args.concurrency,
        rate=args.rate,
        root_seed=args.seed,
        deadline_ms=args.deadline_ms,
        mode=args.mode,
        verify=not args.no_verify,
        shutdown=args.shutdown,
    )
    try:
        report = asyncio.run(run_loadgen(args.host, args.port, config))
    except OSError as exc:
        raise SystemExit(
            f"repro loadgen: cannot reach {args.host}:{args.port}: {exc}"
        )
    Path(args.output).write_text(json.dumps(report, indent=1) + "\n")
    lat = report["latency_ms"]
    server = report.get("server") or {}
    occupancy = (server.get("batches") or {}).get("mean_occupancy")
    oracle = "local estimate" if args.mode == "estimate" else "serial replay"
    print(
        f"loadgen: {report['ok']}/{config.requests} ok "
        f"({', '.join(f'{k}={v}' for k, v in sorted(report['statuses'].items()))}) "
        f"in {report['wall_s']:.2f}s = {report['throughput_rps']} req/s\n"
        f"  latency ms: p50={lat['p50']} p95={lat['p95']} p99={lat['p99']} "
        f"max={lat['max']}\n"
        f"  mean batch occupancy: client={report['client_mean_batch']}"
        + (f" server={occupancy}" if occupancy is not None else "")
        + f"\n  bit-exact vs {oracle}: {report['bit_exact']} "
        f"({report['verified']} verified)\n"
        f"written to {args.output}"
    )
    if report["mismatches"]:
        for line in report["mismatches"][:5]:
            print(f"  MISMATCH: {line}")
        raise SystemExit(f"repro loadgen: responses diverged from {oracle}")


def _bench_micro(bench_dir) -> list[dict]:
    """Run the perf microbenchmarks via pytest-benchmark; return stats."""
    import json
    import subprocess
    import sys
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        report = Path(tmp) / "micro.json"
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                str(bench_dir / "test_perf_micro.py"),
                str(bench_dir / "test_perf_batch.py"),
                "--benchmark-only",
                "--benchmark-disable-gc",
                f"--benchmark-json={report}",
                "-q",
            ],
            cwd=bench_dir.parent,
        )
        if proc.returncode != 0:
            raise SystemExit("repro bench: microbenchmark run failed")
        payload = json.loads(report.read_text())
    return [
        {
            "name": b["name"],
            "mean_s": b["stats"]["mean"],
            "stddev_s": b["stats"]["stddev"],
            "rounds": b["stats"]["rounds"],
        }
        for b in payload.get("benchmarks", [])
    ]


def _machine_info() -> dict:
    """JSON-safe host provenance shared by the bench payloads."""
    import os
    import platform

    from repro.sim import fastpath

    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": os.cpu_count(),
        "fastpath": fastpath.active_backend(),
    }


def _bench_backends(args: argparse.Namespace) -> None:
    """Time the same sweep grid on each exec backend; write BENCH_exec.json.

    Units are single trials (``batch_size=1``) — the granularity the
    simulation service dispatches — so the comparison isolates backend
    overhead: GIL hand-offs between worker threads versus pickle
    round-trips to isolated worker processes.
    """
    import json
    import time
    from pathlib import Path

    from repro.exec import BACKENDS, create_backend
    from repro.sim.sweep import run_sweep, sweep_grid

    repeats = 6 if args.quick else max(args.repeats, 12)
    workers = max(args.workers, 2)
    rounds = 2 if args.quick else 4
    channels = (1, 2, 4)
    workload_params = {"chains": 4, "depth": 12, "messages": 8}
    specs = sweep_grid(
        "chain-bundle",
        "wormhole",
        channels,
        workload_params=workload_params,
        message_length=24,
        repeats=repeats,
    )
    trials = len(specs)

    # Interleave timing rounds across backends (and keep the best of
    # each) so ambient machine noise drifts across all of them alike
    # instead of biasing whichever ran last.
    backends = {n: create_backend(n, workers=workers) for n in BACKENDS}
    walls = {n: float("inf") for n in BACKENDS}
    metrics_by: dict[str, list] = {}
    try:
        for _ in range(rounds):
            for name, backend in backends.items():
                t0 = time.perf_counter()
                out = run_sweep(
                    specs,
                    root_seed=args.seed,
                    workers=workers,
                    backend=backend,
                    batch_size=1,
                )
                walls[name] = min(walls[name], time.perf_counter() - t0)
                metrics_by[name] = [t.metrics for t in out]
    finally:
        for backend in backends.values():
            backend.close()
    baseline = metrics_by["inline"]
    results = {
        name: {
            "wall_s": round(walls[name], 6),
            "trials_per_s": round(trials / walls[name], 2),
            "bit_identical": metrics_by[name] == baseline,
        }
        for name in BACKENDS
    }

    output = args.output or "BENCH_exec.json"
    payload = {
        "machine": _machine_info(),
        "grid": {
            "workload": "chain-bundle",
            "workload_params": workload_params,
            "message_length": 24,
            "channels": list(channels),
            "repeats": repeats,
            "trials": trials,
            "workers": workers,
            "batch_size": 1,
        },
        "backends": results,
        "process_vs_thread_speedup": round(
            results["thread"]["wall_s"] / results["process"]["wall_s"], 2
        ),
    }
    Path(output).write_text(json.dumps(payload, indent=1) + "\n")
    print(f"bench: {trials} wormhole trials on each backend, {workers} workers")
    for name in BACKENDS:
        r = results[name]
        print(
            f"  {name:8s} {r['wall_s']:.3f}s  {r['trials_per_s']:8.1f} "
            f"trials/s  bit-identical: {r['bit_identical']}"
        )
    print(
        f"  process vs thread speedup: "
        f"{payload['process_vs_thread_speedup']}x\nwritten to {output}"
    )
    if not all(r["bit_identical"] for r in results.values()):
        raise SystemExit("repro bench: backends diverged")


#: The ``repro bench`` grid, one row per batched model.  Path-based
#: routers share the chain-bundle workload; the adaptive router times on
#: the permutation mesh it requires.
_BENCH_MODELS: "tuple[tuple[str, str, dict, int], ...]" = (
    ("wormhole", "chain-bundle", {"chains": 4, "depth": 12, "messages": 8}, 24),
    ("cut_through", "chain-bundle", {"chains": 4, "depth": 12, "messages": 8}, 24),
    ("store_forward", "chain-bundle", {"chains": 4, "depth": 12, "messages": 8}, 24),
    ("restricted", "chain-bundle", {"chains": 4, "depth": 12, "messages": 8}, 24),
    ("adaptive", "mesh-permutation", {"k": 6}, 6),
)


def _bench_estimate(args: argparse.Namespace) -> None:
    """Time the analytic estimator against exact trials per model.

    Writes ``BENCH_estimate.json``: per ``(model, B)`` the estimator's
    call latency, the exact trial's latency, the envelope's bounds and
    tightness (``upper / lower``), and whether the measured makespan
    landed inside the envelope.  The headline numbers — overall p50/p95
    estimate latency — are what CI pins (p95 < 1 ms) and what an
    operator uses to calibrate ``step_cost_ms`` for deadline screening.
    """
    import json
    import time
    from pathlib import Path

    from repro.analysis.estimate import estimate_spec
    from repro.sim.sweep import TrialSpec, _execute_trial

    channels = (1, 2, 4)
    reps = 50 if args.quick else 200
    models: dict[str, dict] = {}
    lines = []
    all_inside = True
    all_est_us: list[float] = []
    for model, workload, workload_params, L in _BENCH_MODELS:
        per_b: dict[str, dict] = {}
        for B in channels:
            spec = TrialSpec.make(
                workload,
                model,
                B=B,
                workload_params=workload_params,
                message_length=L,
            )
            env = estimate_spec(spec)  # warm the workload cache
            walls = []
            for _ in range(reps):
                t0 = time.perf_counter()
                env = estimate_spec(spec)
                walls.append(time.perf_counter() - t0)
            est_us = [w * 1e6 for w in walls]
            all_est_us.extend(est_us)
            t0 = time.perf_counter()
            metrics, _ = _execute_trial((spec, args.seed))
            exact_ms = (time.perf_counter() - t0) * 1e3
            makespan = int(metrics["makespan"])
            inside = env.check(makespan)
            all_inside &= inside
            p50_us = float(np.percentile(est_us, 50))
            per_b[str(B)] = {
                "estimate_p50_us": round(p50_us, 2),
                "estimate_p95_us": round(float(np.percentile(est_us, 95)), 2),
                "exact_ms": round(exact_ms, 3),
                "speedup_vs_exact": round(exact_ms * 1e3 / p50_us, 1),
                "makespan": makespan,
                "lower": env.lower,
                "upper": env.upper,
                "tightness": (
                    None if env.tightness is None else round(env.tightness, 3)
                ),
                "within_envelope": inside,
            }
        models[model] = {
            "workload": workload,
            "workload_params": workload_params,
            "message_length": L,
            "per_B": per_b,
        }
        mid = per_b[str(channels[len(channels) // 2])]
        lines.append(
            f"  {model:<14} estimate p50 {mid['estimate_p50_us']:8.1f}us  "
            f"exact {mid['exact_ms']:8.2f}ms  "
            f"speedup {mid['speedup_vs_exact']:>9.1f}x  "
            f"tightness {mid['tightness'] or '-'}  "
            f"inside: {mid['within_envelope']}"
        )
    payload = {
        "machine": _machine_info(),
        "grid": {
            "channels": list(channels),
            "models": [m for m, *_ in _BENCH_MODELS],
            "latency_samples_per_cell": reps,
            "root_seed": args.seed,
        },
        "estimate_latency_us": {
            "count": len(all_est_us),
            "p50": round(float(np.percentile(all_est_us, 50)), 2),
            "p95": round(float(np.percentile(all_est_us, 95)), 2),
            "max": round(max(all_est_us), 2),
        },
        "models": models,
        "envelope_holds": all_inside,
    }
    output = Path(args.output or "BENCH_estimate.json")
    output.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    lat = payload["estimate_latency_us"]
    print(
        f"bench estimate: {len(all_est_us)} estimator calls, "
        f"p50={lat['p50']}us p95={lat['p95']}us"
    )
    print("\n".join(lines))
    print(
        f"  envelope holds: {all_inside}\nwritten to {output}"
    )
    if not all_inside:
        raise SystemExit(
            "repro bench: a measured makespan escaped its analytic envelope"
        )


def _cmd_bench(args: argparse.Namespace) -> None:
    """Time batched vs per-trial sweeps per model; write BENCH_sim.json."""
    import json
    import time
    from pathlib import Path

    from repro.sim.sweep import DEFAULT_BATCH_SIZE, run_sweep, sweep_grid

    if args.backend:
        _bench_backends(args)
        return
    if args.estimate:
        _bench_estimate(args)
        return
    if args.cluster:
        import asyncio

        from repro.cluster.bench import run_cluster_bench

        payload = asyncio.run(
            run_cluster_bench(quick=args.quick, root_seed=args.seed)
        )
        payload["machine"] = _machine_info()
        output = Path(args.output or "BENCH_cluster.json")
        output.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        scaling = payload["scaling"]
        print(
            "bench cluster: "
            + " ".join(
                f"{w}w={scaling[w]['throughput_rps']}rps" for w in scaling
            )
            + f" speedup_4v1={payload['speedup_4v1']}x "
            f"cache_hit_rate={payload['cache']['second_pass']['hit_rate']} "
            f"bit_exact={payload['bit_exact']}\n"
            f"written to {output}"
        )
        if not payload["bit_exact"]:
            raise SystemExit(
                "repro bench: cluster responses diverged from serial replay"
            )
        return

    repeats = 6 if args.quick else args.repeats
    channels = (1, 2, 4)

    def best_of(fn, rounds=3):
        wall, out = float("inf"), None
        for _ in range(rounds):
            t0 = time.perf_counter()
            out = fn()
            wall = min(wall, time.perf_counter() - t0)
        return out, wall

    models: dict[str, dict] = {}
    lines = []
    all_identical = True
    for model, workload, workload_params, L in _BENCH_MODELS:
        specs = sweep_grid(
            workload,
            model,
            channels,
            workload_params=workload_params,
            message_length=L,
            repeats=repeats,
        )
        serial_out, serial_wall = best_of(
            lambda: run_sweep(
                specs, root_seed=args.seed, workers=args.workers, batch_size=1
            )
        )
        batched_out, batched_wall = best_of(
            lambda: run_sweep(specs, root_seed=args.seed, workers=args.workers)
        )
        identical = [t.metrics for t in serial_out] == [
            t.metrics for t in batched_out
        ]
        all_identical &= identical
        speedup = serial_wall / batched_wall
        trials = len(specs)

        # Single-trial latency: what one isolated trial costs end to end
        # (the granularity the online service dispatches).  Each repeat
        # of the middle channel count is timed on its own so the
        # percentiles reflect per-call latency, not amortized throughput.
        lat_b = channels[len(channels) // 2]
        lat_specs = [s for s in specs if s.B == lat_b]
        lat_walls = []
        for spec in lat_specs:
            t0 = time.perf_counter()
            run_sweep([spec], root_seed=args.seed, workers=1, batch_size=1)
            lat_walls.append(time.perf_counter() - t0)
        latency = {
            "batch_size": 1,
            "channels": lat_b,
            "samples": len(lat_walls),
            "p50_ms": round(float(np.percentile(lat_walls, 50)) * 1e3, 3),
            "p95_ms": round(float(np.percentile(lat_walls, 95)) * 1e3, 3),
        }

        models[model] = {
            "workload": workload,
            "workload_params": workload_params,
            "message_length": L,
            "trials": trials,
            "serial_wall_s": round(serial_wall, 6),
            "batched_wall_s": round(batched_wall, 6),
            "serial_trials_per_s": round(trials / serial_wall, 2),
            "batched_trials_per_s": round(trials / batched_wall, 2),
            "speedup": round(speedup, 2),
            "bit_identical": identical,
            "latency": latency,
        }
        lines.append(
            f"  {model:<14} serial {serial_wall:7.3f}s  "
            f"batched {batched_wall:7.3f}s  speedup {speedup:5.2f}x  "
            f"p50 {latency['p50_ms']:7.2f}ms  "
            f"bit-identical: {identical}"
        )

    worm = models["wormhole"]
    trials = worm["trials"]
    payload = {
        "machine": _machine_info(),
        "grid": {
            "workload": "chain-bundle",
            "workload_params": _BENCH_MODELS[0][2],
            "message_length": 24,
            "channels": list(channels),
            "repeats": repeats,
            "trials": trials,
            "workers": args.workers if args.workers >= 2 else 1,
        },
        # The wormhole row keeps the legacy top-level shape so the
        # BENCH_sim.json trajectory stays comparable across revisions.
        "serial": {
            "batch_size": 1,
            "wall_s": worm["serial_wall_s"],
            "trials_per_s": worm["serial_trials_per_s"],
        },
        "batched": {
            "batch_size": DEFAULT_BATCH_SIZE,
            "wall_s": worm["batched_wall_s"],
            "trials_per_s": worm["batched_trials_per_s"],
        },
        "speedup": worm["speedup"],
        "models": models,
        "bit_identical": all_identical,
    }
    if not (args.quick or args.no_micro):
        payload["micro"] = _bench_micro(_find_bench_dir())
    output = args.output or "BENCH_sim.json"
    Path(output).write_text(json.dumps(payload, indent=1) + "\n")
    print(
        f"bench: {trials} trials per model, B={channels}, "
        f"batch_size={DEFAULT_BATCH_SIZE}"
    )
    print("\n".join(lines))
    print(f"  bit-identical: {all_identical}\nwritten to {output}")
    if not all_identical:
        raise SystemExit("repro bench: batched metrics diverged from serial")


def _cmd_experiment(args: argparse.Namespace) -> None:
    """Run one experiment's benchmark file and print its saved tables."""
    import subprocess
    import sys

    bench_dir = _find_bench_dir()
    name = args.name.lower()
    matches = sorted(bench_dir.glob(f"test_{name}_*.py")) + sorted(
        bench_dir.glob(f"test_{name}.py")
    )
    if not matches:
        available = sorted(
            p.stem.split("_")[1] for p in bench_dir.glob("test_*.py")
        )
        raise SystemExit(
            f"no benchmark for {args.name!r}; available: {', '.join(available)}"
        )
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            *[str(m) for m in matches],
            "--benchmark-only",
            "-q",
            "--benchmark-disable-gc",
            "--no-header",
        ],
        cwd=bench_dir.parent,
        capture_output=True,
        text=True,
    )
    results_dir = bench_dir / "results"
    printed = False
    for table_file in sorted(results_dir.glob(f"{name}*.txt")):
        print(table_file.read_text().rstrip())
        print()
        printed = True
    if proc.returncode != 0:
        print(proc.stdout[-2000:])
        raise SystemExit("benchmark run failed")
    if not printed:
        print(proc.stdout[-2000:])


def _cmd_reproduce(args: argparse.Namespace) -> None:
    """Run the full benchmark suite, then bundle every result table."""
    import subprocess
    import sys

    bench_dir = _find_bench_dir()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", str(bench_dir), "--benchmark-only", "-q"],
        cwd=bench_dir.parent,
        capture_output=True,
        text=True,
    )
    summary = next(
        (ln for ln in reversed(proc.stdout.splitlines()) if "passed" in ln),
        proc.stdout.strip().splitlines()[-1] if proc.stdout.strip() else "",
    )
    print(f"benchmark suite: {summary.strip()}")
    if proc.returncode != 0:
        print(proc.stdout[-3000:])
        raise SystemExit("reproduction run failed")
    results_dir = bench_dir / "results"
    bundle = results_dir / "ALL_RESULTS.txt"
    parts = []
    for table_file in sorted(results_dir.glob("e*.txt")):
        if table_file.name == "ALL_RESULTS.txt":
            continue
        parts.append(table_file.read_text().rstrip())
    bundle.write_text("\n\n".join(parts) + "\n")
    print(f"{len(parts)} tables bundled into {bundle}")


def _find_bench_dir():
    from pathlib import Path

    candidates = [
        Path(__file__).resolve().parents[2] / "benchmarks",
        Path(__file__).resolve().parents[2].parent / "benchmarks",
    ]
    for c in candidates:
        if c.is_dir():
            return c
    raise SystemExit("benchmarks directory not found (source checkout required)")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
