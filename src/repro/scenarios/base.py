"""Scenario registry: named adversarial workloads with declared expectations.

A *scenario* is a curated hard case from the paper (or the interconnect
literature around it) packaged three ways at once:

* a **builder** — ``build(B=..., **params) -> ScenarioCase`` producing a
  concrete :class:`~repro.sim.sweep.Workload` (or an open-loop arrival
  trace) for the requested virtual-channel count;
* a set of **expectations** — labelled invariant checks from
  :mod:`repro.fuzz.invariants` that the outcome must satisfy (the
  Theorem 2.2.1 lower bound, the Theorem 2.1.6 length bound,
  deadlock determinism, message conservation, ...);
* a **sweep workload** — every trial-shaped scenario auto-registers as
  ``scenario:<name>`` in :data:`repro.sim.sweep.WORKLOADS`, so scenario
  cells drop into ``repro sweep``, the service loadgen, and the process
  backends unchanged.

Registration mirrors :func:`repro.sim.sweep.register_workload`::

    @register_scenario(
        "chain-contention",
        family="contention",
        theorem="Theorem 2.1.2",
        models=("wormhole", "cut_through", "store_forward", "restricted"),
    )
    def _build(B=1, chains=4, depth=12, messages=8):
        ...
        return ScenarioCase(workload=wl, message_length=L, checks=[...])

Run one with :meth:`Scenario.run` (dispatches through
:func:`repro.simulate`, so any model/backend the scenario declares works,
and :mod:`repro.telemetry` probes attach unchanged), or from the CLI:
``repro scenario list | show <name> | run <name>``.
"""

from __future__ import annotations

import inspect
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..fuzz.invariants import Violation
from ..network.graph import NetworkError
from ..sim.sweep import Workload, register_workload

__all__ = [
    "CheckFn",
    "Scenario",
    "ScenarioCase",
    "ScenarioRun",
    "SCENARIOS",
    "get_scenario",
    "register_scenario",
]

CheckFn = Callable[[Any, dict[str, Any]], "Violation | list[Violation] | None"]
"""An expectation: ``fn(outcome, ctx)`` returning violation(s) or None.

``outcome`` is the model's result object (a
:class:`~repro.sim.stats.SimulationResult`, a
:class:`~repro.sim.continuous.ContinuousResult`, or the schedule
pipeline's metrics dict); ``ctx`` carries ``model``, ``B``, ``L``,
``seed`` and the built :class:`ScenarioCase`.
"""


@dataclass
class ScenarioCase:
    """One built instance of a scenario, ready to simulate.

    ``kind`` selects the execution shape:

    * ``"trial"`` — ``workload`` routes through :func:`repro.simulate`
      on any of the scenario's declared models;
    * ``"schedule"`` — the Theorem 2.1.6 pipeline (LLL schedule build +
      validated execution) over ``workload.paths``;
    * ``"continuous"`` — the open-loop simulator over ``num_sources``
      injectors with per-step arrival probabilities ``rate`` (scalar or
      a ``(horizon,)`` trace).
    """

    kind: str = "trial"
    workload: Workload | None = None
    message_length: int | None = None
    priority: str | None = None
    policy: str | None = None
    vc_ids: Any = None
    release_times: Any = None
    num_sources: int | None = None
    path_of: Any = None
    rate: Any = None
    horizon: int | None = None
    checks: list[tuple[str, CheckFn]] = field(default_factory=list)
    info: dict[str, Any] = field(default_factory=dict)


@dataclass
class ScenarioRun:
    """Outcome of :meth:`Scenario.run`: the result plus its verdicts."""

    scenario: str
    model: str
    B: int
    case: ScenarioCase
    outcome: Any
    violations: list[Violation]
    checked: list[str]

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> dict[str, Any]:
        """Display scalars for tables (model-shape aware)."""
        out = self.outcome
        if isinstance(out, dict):  # schedule pipeline metrics
            return {
                "makespan": out["makespan"],
                "length_bound": out["length_bound"],
                "classes": out["classes"],
                "delivered": f"{out['delivered']}/{out['messages']}",
            }
        if hasattr(out, "final_backlog"):  # ContinuousResult
            return {
                "generated": out.generated,
                "delivered": out.delivered,
                "backlog": out.final_backlog,
                "throughput": round(out.throughput, 4),
            }
        return {
            "makespan": int(out.makespan),
            "delivered": f"{out.num_delivered}/{out.num_messages}",
            "blocked": int(out.total_blocked_steps),
            "deadlocked": bool(out.deadlocked),
        }


@dataclass(frozen=True)
class Scenario:
    """A registered scenario: builder + metadata + expectations."""

    name: str
    family: str
    theorem: str
    description: str
    kind: str
    models: tuple[str, ...]
    build: Callable[..., ScenarioCase]

    def defaults(self) -> dict[str, Any]:
        """The builder's keyword defaults (for ``repro scenario show``)."""
        return {
            k: p.default
            for k, p in inspect.signature(self.build).parameters.items()
            if p.default is not inspect.Parameter.empty
        }

    def build_case(self, *, B: int = 1, **params: Any) -> ScenarioCase:
        return self.build(B=B, **params)

    def run(
        self,
        *,
        B: int = 1,
        model: str | None = None,
        seed: int | None = 0,
        telemetry: Any = None,
        backend: Any = None,
        max_steps: int | None = None,
        **params: Any,
    ) -> ScenarioRun:
        """Build the case for ``B`` and simulate it under ``model``.

        ``model`` defaults to the scenario's first declared model; any
        declared model is accepted.  ``telemetry`` / ``backend`` /
        ``max_steps`` forward to :func:`repro.simulate` (telemetry only
        where the model supports probes).
        """
        if model is None:
            model = self.models[0]
        if model not in self.models:
            raise NetworkError(
                f"scenario {self.name!r} does not support model {model!r}; "
                f"declared: {', '.join(self.models)}"
            )
        case = self.build_case(B=B, **params)
        outcome = _execute_case(
            self,
            case,
            model=model,
            B=B,
            seed=seed,
            telemetry=telemetry,
            backend=backend,
            max_steps=max_steps,
        )
        ctx = {
            "model": model,
            "B": int(B),
            "L": case.message_length,
            "seed": seed,
            "case": case,
        }
        violations: list[Violation] = []
        checked: list[str] = []
        for label, check in case.checks:
            checked.append(label)
            got = check(outcome, ctx)
            if got is None:
                continue
            violations.extend(got if isinstance(got, list) else [got])
        return ScenarioRun(
            scenario=self.name,
            model=model,
            B=int(B),
            case=case,
            outcome=outcome,
            violations=violations,
            checked=checked,
        )


def _execute_case(
    scen: Scenario,
    case: ScenarioCase,
    *,
    model: str,
    B: int,
    seed,
    telemetry,
    backend,
    max_steps,
):
    from ..facade import simulate

    if case.kind == "continuous":
        if backend is not None:
            raise NetworkError(
                "continuous scenarios run in-process (path generators "
                "are not picklable); use backend=None"
            )
        return simulate(
            (case.workload.net, case.num_sources, case.path_of),
            model="continuous",
            B=B,
            message_length=case.message_length,
            seed=seed,
            rate=case.rate,
            horizon=case.horizon,
        )

    if case.kind == "schedule" and model == "schedule":
        return _run_schedule_case(case, B=B, seed=seed, telemetry=telemetry)

    return simulate(
        case.workload,
        model=model,
        B=B,
        message_length=case.message_length,
        seed=seed,
        priority=case.priority,
        policy=case.policy,
        vc_ids=case.vc_ids,
        release_times=case.release_times,
        telemetry=telemetry,
        backend=backend,
        max_steps=max_steps,
    )


def _run_schedule_case(case: ScenarioCase, *, B: int, seed, telemetry):
    """The Theorem 2.1.6 pipeline, reported as the sweep runner's metrics."""
    from ..core.schedule import execute_schedule
    from ..core.scheduler import lll_schedule

    build = lll_schedule(
        case.workload.paths,
        message_length=case.message_length,
        B=B,
        rng=np.random.default_rng(seed),
        mode="direct",
    )
    res = execute_schedule(
        case.workload.net,
        case.workload.paths,
        build.schedule,
        B=B,
        require_unblocked=False,
        telemetry=telemetry,
    )
    return {
        "makespan": int(res.makespan),
        "messages": int(res.num_messages),
        "delivered": int(res.num_delivered),
        "deadlocked": bool(res.deadlocked),
        "hit_step_cap": bool(res.hit_step_cap),
        "classes": int(build.num_classes),
        "congestion": int(build.congestion),
        "dilation": int(build.dilation),
        "length_bound": int(build.length_bound),
    }


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

SCENARIOS: dict[str, Scenario] = {}


def register_scenario(
    name: str,
    *,
    family: str,
    theorem: str,
    kind: str = "trial",
    models: Sequence[str] = ("wormhole",),
    description: str | None = None,
) -> Callable:
    """Register ``build(B=..., **params) -> ScenarioCase`` under ``name``.

    Trial- and schedule-shaped scenarios also register their workload as
    ``scenario:<name>`` in the sweep registry, so they are addressable
    from :class:`~repro.sim.sweep.TrialSpec`, ``repro sweep``, the
    facade's workload-name problem form, and the service loadgen.  The
    builder's ``B`` rides along as an ordinary workload parameter there
    (gadget instances must be built *for* the ``B`` they run at).
    """
    if kind not in ("trial", "schedule", "continuous"):
        raise NetworkError(f"unknown scenario kind {kind!r}")

    def deco(build_fn: Callable[..., ScenarioCase]) -> Scenario:
        scen = Scenario(
            name=name,
            family=family,
            theorem=theorem,
            description=(
                description
                if description is not None
                else inspect.getdoc(build_fn) or ""
            ).strip(),
            kind=kind,
            models=tuple(models),
            build=build_fn,
        )
        SCENARIOS[name] = scen
        if kind in ("trial", "schedule"):

            def _workload(**params: Any) -> Workload:
                case = build_fn(**params)
                wl = case.workload
                if case.message_length is not None:
                    wl.default_length = int(case.message_length)
                return wl

            _workload.__name__ = f"_wl_scenario_{name.replace('-', '_')}"
            register_workload(f"scenario:{name}")(_workload)
        return scen

    return deco


def get_scenario(name: str) -> Scenario:
    scen = SCENARIOS.get(name)
    if scen is None:
        raise NetworkError(
            f"unknown scenario {name!r}; "
            f"registered: {', '.join(sorted(SCENARIOS))}"
        )
    return scen
