"""The curated scenarios: the paper's hard cases as registry entries.

Families and the results they stress:

``lower-bound``
    ``lower-bound-gadget`` and ``gadget-hotspot`` — the Theorem 2.2.1
    construction (every ``B+1`` messages share a primary edge), plain
    and with a hot-spotted replica skew; routed runs must take at least
    ``(L - D) M / B`` flit steps.
``contention``
    ``chain-contention`` — :func:`~repro.network.random_networks.chain_bundle`
    bundles with exactly dialed ``C`` and ``D``, checked against the
    unobstructed time and the ``ceil(L C / B)`` edge-capacity bound.
``schedule``
    ``layered-schedule`` — the Theorem 2.1.6 LLL pipeline on a random
    leveled workload; execution must meet the schedule's length bound.
``deadlock``
    ``ring-deadlock`` and ``ring-dateline`` — ring traffic whose channel
    dependency graph is cyclic (deadlocks whenever ``B < hops``) and the
    Dally-Seitz dateline escape that provably breaks the cycle;
    ``hotspot-mesh`` — hot-spot traffic under the adaptive mesh router.
``arrival``
    ``bursty-arrivals`` and ``heavy-tail-arrivals`` — open-loop traces
    for the continuous model (square-wave bursts, Pareto-modulated
    rates), checked for message conservation.

Every expectation delegates to a :mod:`repro.fuzz.invariants` checker, so
a scenario failure and a fuzzer failure mean the same thing.
"""

from __future__ import annotations

import numpy as np

from ..fuzz import invariants as inv
from ..fuzz.invariants import Violation
from ..network.graph import Network
from ..sim.sweep import Workload
from .base import ScenarioCase, register_scenario

__all__: list[str] = []  # scenarios are reached through the registry


# ----------------------------------------------------------------------
# Check helpers (close over builder-time facts, read run-time ctx)
# ----------------------------------------------------------------------


def _fields(outcome) -> dict:
    """Uniform scalars across SimulationResult / schedule-metric dicts."""
    if isinstance(outcome, dict):
        return outcome
    return {
        "makespan": int(outcome.makespan),
        "messages": int(outcome.num_messages),
        "delivered": int(outcome.num_delivered),
        "deadlocked": bool(outcome.deadlocked),
        "hit_step_cap": bool(outcome.hit_step_cap),
    }


def _clean(f: dict) -> bool:
    return not (f["deadlocked"] or f["hit_step_cap"])


def _delivery_check():
    def check(outcome, ctx):
        f = _fields(outcome)
        return inv.check_delivery(
            delivered=f["delivered"],
            messages=f["messages"],
            deadlocked=f["deadlocked"],
            hit_step_cap=f["hit_step_cap"],
            model=ctx["model"],
        )

    return ("clean runs deliver every message", check)


def _unobstructed_check(path_lengths):
    lengths = tuple(int(d) for d in path_lengths)

    def check(outcome, ctx):
        f = _fields(outcome)
        if not _clean(f):
            return None
        model = (
            "store_forward" if ctx["model"] == "store_forward" else "wormhole"
        )
        return inv.check_unobstructed(
            f["makespan"],
            message_length=ctx["L"],
            path_lengths=lengths,
            B=ctx["B"],
            model=model,
        )

    return ("makespan >= the unobstructed time (Section 1.1)", check)


def _congestion_check(C):
    def check(outcome, ctx):
        if ctx["model"] != "wormhole":
            return None
        f = _fields(outcome)
        if not _clean(f):
            return None
        return inv.check_congestion_bound(
            f["makespan"], message_length=ctx["L"], congestion=int(C), B=ctx["B"]
        )

    return ("makespan >= ceil(L*C/B) (edge capacity)", check)


def _gadget_check(lower_bound_of_B, built_B):
    """Theorem 2.2.1: applies to the wormhole model at the built ``B``."""

    def check(outcome, ctx):
        if ctx["model"] != "wormhole" or ctx["B"] != built_B:
            return None
        f = _fields(outcome)
        if not _clean(f):
            return None
        return inv.check_gadget_bound(
            f["makespan"], lower_bound=float(lower_bound_of_B)
        )

    return ("makespan >= (L-D)M/B (Theorem 2.2.1)", check)


def _sf_envelope_check(C, D):
    def check(outcome, ctx):
        if ctx["model"] != "store_forward" or ctx["B"] != 1:
            return None
        f = _fields(outcome)
        if not _clean(f):
            return None
        return inv.check_store_forward_envelope(
            f["makespan"],
            message_length=ctx["L"],
            congestion=int(C),
            dilation=int(D),
        )

    return ("store-and-forward stays O(L(C+D)) (Rothvoss et al.)", check)


def _schedule_bound_check():
    def check(outcome, ctx):
        if not isinstance(outcome, dict):
            return None  # run on a plain greedy model: no schedule to bound
        return inv.check_schedule_bound(
            outcome["makespan"], length_bound=outcome["length_bound"]
        )

    return ("executed schedule meets its length bound (Theorem 2.1.6)", check)


def _deadlock_consistency_check(cdg_acyclic: bool):
    acyclic = bool(cdg_acyclic)

    def check(outcome, ctx):
        f = _fields(outcome)
        return inv.check_deadlock_consistency(
            f["deadlocked"], cdg_acyclic=acyclic, model=ctx["model"]
        )

    label = (
        "acyclic channel dependency graph forbids deadlock (Dally-Seitz)"
        if acyclic
        else "cyclic channel dependency graph: deadlock is permitted"
    )
    return (label, check)


def _deadlock_expected_check(expected: bool, why: str):
    want = bool(expected)

    def check(outcome, ctx):
        if ctx["model"] != "wormhole":
            return None
        f = _fields(outcome)
        if f["deadlocked"] == want:
            return None
        return Violation(
            "ring-deadlock-determinism",
            f"wormhole ring: expected deadlocked={want} ({why}), "
            f"observed deadlocked={f['deadlocked']}",
            observed=f["deadlocked"],
            bound=want,
        )

    return (f"deadlock is deterministic here: {why}", check)


def _conservation_check():
    def check(outcome, ctx):
        return inv.check_conservation(
            generated=int(outcome.generated),
            delivered=int(outcome.delivered),
            backlog=int(outcome.final_backlog),
        )

    return ("generated == delivered + backlog (conservation)", check)


# ----------------------------------------------------------------------
# lower-bound family (Theorem 2.2.1)
# ----------------------------------------------------------------------


@register_scenario(
    "lower-bound-gadget",
    family="lower-bound",
    theorem="Theorem 2.2.1",
    models=("wormhole", "cut_through", "store_forward", "restricted"),
)
def _build_lower_bound_gadget(
    B: int = 1, C: int = 8, D: int = 15, length_factor: float = 2.0
) -> ScenarioCase:
    """The paper's hard instance, built *for* the requested ``B``: every
    ``B+1`` messages share a primary edge, so at most ``B`` make progress
    per flit step and routing needs ``(L-D)M/B`` steps."""
    from ..core.lower_bound import build_hard_instance, hard_instance_lower_bound

    inst = build_hard_instance(C=int(C), D=int(D), B=int(B))
    L = inst.recommended_length(float(length_factor))
    wl = Workload(
        net=inst.network,
        paths=inst.paths,
        default_length=L,
        info={
            "congestion": inst.congestion,
            "dilation": inst.dilation,
            "messages": inst.num_messages,
            "m_prime": inst.m_prime,
        },
    )
    bound = hard_instance_lower_bound(inst, L)
    lengths = [len(p) for p in inst.paths]
    return ScenarioCase(
        workload=wl,
        message_length=L,
        checks=[
            _gadget_check(bound, int(B)),
            _congestion_check(inst.congestion),
            _unobstructed_check(lengths),
            _delivery_check(),
        ],
        info={
            "C": inst.congestion,
            "D": inst.dilation,
            "M": inst.num_messages,
            "L": L,
            "built_B": int(B),
            "lower_bound": bound,
        },
    )


@register_scenario(
    "gadget-hotspot",
    family="lower-bound",
    theorem="Theorem 2.2.1",
    models=("wormhole", "cut_through", "store_forward", "restricted"),
)
def _build_gadget_hotspot(
    B: int = 1,
    C: int = 8,
    D: int = 15,
    hotspot_extra: int = 6,
    length_factor: float = 2.0,
) -> ScenarioCase:
    """The hard instance with a hot-spotted replica skew: ``hotspot_extra``
    extra copies of base message 0.  The progress argument survives — any
    ``B+1`` concurrently progressing messages either span ``B+1`` distinct
    bases (they share that subset's primary edge) or repeat a base (the
    copies share *all* of its primary edges) — so the ``(L-D)M/B`` bound
    holds with the inflated ``M``."""
    from ..core.lower_bound import build_hard_instance

    inst = build_hard_instance(C=int(C), D=int(D), B=int(B))
    L = inst.recommended_length(float(length_factor))
    base0 = [
        list(inst.paths[i])
        for i in range(len(inst.paths))
        if inst.base_message_of[i] == 0
    ]
    paths = [list(p) for p in inst.paths]
    for i in range(int(hotspot_extra)):
        paths.append(list(base0[i % len(base0)]))
    M = len(paths)
    bound = (L - inst.dilation) * M / int(B)
    wl = Workload(
        net=inst.network,
        paths=paths,
        default_length=L,
        info={
            "congestion": inst.congestion + int(hotspot_extra),
            "dilation": inst.dilation,
            "messages": M,
        },
    )
    return ScenarioCase(
        workload=wl,
        message_length=L,
        checks=[
            _gadget_check(bound, int(B)),
            _unobstructed_check([len(p) for p in paths]),
            _delivery_check(),
        ],
        info={
            "C": inst.congestion + int(hotspot_extra),
            "D": inst.dilation,
            "M": M,
            "L": L,
            "built_B": int(B),
            "lower_bound": bound,
            "hotspot_extra": int(hotspot_extra),
        },
    )


# ----------------------------------------------------------------------
# contention family
# ----------------------------------------------------------------------


@register_scenario(
    "chain-contention",
    family="contention",
    theorem="Theorem 2.1.2 / Section 1.1",
    models=("wormhole", "cut_through", "store_forward", "restricted"),
)
def _build_chain_contention(
    B: int = 1, chains: int = 4, depth: int = 12, messages: int = 8
) -> ScenarioCase:
    """Disjoint chains with ``messages`` worms each: congestion is exactly
    ``messages`` and dilation exactly ``depth``, the cleanest instance for
    the ``ceil(L C / B)`` capacity bound and the unobstructed time."""
    from ..network.random_networks import chain_bundle
    from ..routing.paths import paths_from_node_walks

    net, walks = chain_bundle(int(chains), int(depth), int(messages))
    paths = paths_from_node_walks(net, walks)
    L = 2 * int(depth)
    wl = Workload(
        net=net,
        paths=paths,
        default_length=L,
        info={
            "congestion": int(messages),
            "dilation": int(depth),
            "messages": len(paths),
        },
    )
    return ScenarioCase(
        workload=wl,
        message_length=L,
        checks=[
            _congestion_check(messages),
            _unobstructed_check([p.length for p in paths]),
            _sf_envelope_check(messages, depth),
            _deadlock_consistency_check(True),  # chains: acyclic CDG
            _delivery_check(),
        ],
        info={"C": int(messages), "D": int(depth), "L": L},
    )


# ----------------------------------------------------------------------
# schedule family (Theorem 2.1.6)
# ----------------------------------------------------------------------


@register_scenario(
    "layered-schedule",
    family="schedule",
    theorem="Theorem 2.1.6",
    kind="schedule",
    models=("schedule", "wormhole", "cut_through", "store_forward"),
)
def _build_layered_schedule(
    B: int = 1,
    width: int = 8,
    depth: int = 6,
    out_degree: int = 3,
    messages: int = 60,
    seed: int = 0,
) -> ScenarioCase:
    """A random leveled workload run through the LLL schedule pipeline:
    the executed schedule must deliver everything, unblocked, within its
    ``num_classes * phase_length`` bound."""
    from ..network.random_networks import layered_network, random_walk_paths
    from ..routing.paths import congestion, dilation, paths_from_node_walks

    rng = np.random.default_rng(int(seed))
    net = layered_network(int(width), int(depth), int(out_degree), rng)
    walks = random_walk_paths(net, int(width), int(depth), int(messages), rng)
    paths = paths_from_node_walks(net, walks)
    C, D = congestion(paths), dilation(paths)
    L = int(depth)
    wl = Workload(
        net=net,
        paths=paths,
        default_length=L,
        info={"congestion": C, "dilation": D, "messages": len(paths)},
    )
    return ScenarioCase(
        kind="schedule",
        workload=wl,
        message_length=L,
        checks=[
            _schedule_bound_check(),
            _unobstructed_check([p.length for p in paths]),
            _deadlock_consistency_check(True),  # leveled: acyclic CDG
            _delivery_check(),
        ],
        info={"C": C, "D": D, "L": L},
    )


# ----------------------------------------------------------------------
# deadlock family (Dally-Seitz, repro.sim.deadlock)
# ----------------------------------------------------------------------


def _ring_case(n: int, hops: int, L: int, dateline_B: int | None):
    """Ring network, one message per node, each covering ``hops`` edges.

    Returns ``(net, paths, vc_ids, cdg_acyclic)``; with ``dateline_B >= 2``
    the classic dateline assignment (switch to VC 1 after crossing edge
    ``n-1``) is applied and the CDG is re-checked under it.
    """
    from ..routing.paths import Path
    from ..sim.deadlock import is_deadlock_free

    net = Network(name=f"ring(n={n})")
    nodes = net.add_nodes(range(n))
    edges = [net.add_edge(nodes[i], nodes[(i + 1) % n]) for i in range(n)]
    raw = [[edges[(s + j) % n] for j in range(hops)] for s in range(n)]
    paths = [Path.from_edges(net, p) for p in raw]

    vc_ids = None
    vc_of = None
    if dateline_B is not None and dateline_B >= 2:
        vc_ids = []
        for p in raw:
            vcs, crossed = [], False
            for e in p:
                vcs.append(1 if crossed else 0)
                if e == n - 1:
                    crossed = True
            vc_ids.append(vcs)
        vc_of = _ring_vc_assignment(raw, vc_ids)
    acyclic = is_deadlock_free(paths, vc_of)
    return net, paths, vc_ids, acyclic


def _ring_vc_assignment(raw, vc_ids):
    index_of = {tuple(p): i for i, p in enumerate(raw)}

    def vc_of(path, hop):
        return vc_ids[index_of[tuple(path.edges)]][hop]

    return vc_of


@register_scenario(
    "ring-deadlock",
    family="deadlock",
    theorem="Section 1.2 / Dally-Seitz",
    models=("wormhole",),
)
def _build_ring_deadlock(B: int = 1, n: int = 6, hops: int = 6) -> ScenarioCase:
    """A ring whose channel dependency graph is a single cycle: with one
    worm per node each spanning ``hops`` edges and ``L > B``, the run
    deadlocks exactly when ``B < hops`` — the failure mode virtual
    channels exist to prevent."""
    n, hops = int(n), int(hops)
    L = hops + int(B) + 1  # keeps L > B so worms can wrap the cycle shut
    net, paths, _, acyclic = _ring_case(n, hops, L, dateline_B=None)
    expected = int(B) < hops
    wl = Workload(
        net=net,
        paths=paths,
        default_length=L,
        info={"n": n, "hops": hops, "messages": len(paths)},
    )
    return ScenarioCase(
        workload=wl,
        message_length=L,
        priority="index",
        checks=[
            _deadlock_expected_check(
                expected, f"B={int(B)} {'<' if expected else '>='} hops={hops}"
            ),
            _deadlock_consistency_check(acyclic),
            _delivery_check(),
        ],
        info={"n": n, "hops": hops, "L": L, "expect_deadlock": expected},
    )


@register_scenario(
    "ring-dateline",
    family="deadlock",
    theorem="Dally-Seitz dateline construction",
    models=("wormhole",),
)
def _build_ring_dateline(B: int = 2, n: int = 6, hops: int = 6) -> ScenarioCase:
    """The same cyclic ring traffic with the dateline escape: messages
    switch to VC class 1 after crossing the wrap edge, the CDG becomes
    acyclic, and the run must deliver (needs ``B >= 2``; at ``B = 1``
    the scenario degrades to the deadlocking configuration)."""
    n, hops = int(n), int(hops)
    L = hops + int(B) + 1
    net, paths, vc_ids, acyclic = _ring_case(n, hops, L, dateline_B=int(B))
    wl = Workload(
        net=net,
        paths=paths,
        default_length=L,
        info={"n": n, "hops": hops, "messages": len(paths)},
    )
    checks = [_deadlock_consistency_check(acyclic), _delivery_check()]
    if int(B) >= 2:
        checks.insert(
            0,
            _deadlock_expected_check(
                False, f"dateline VC classes break the cycle at B={int(B)}"
            ),
        )
    return ScenarioCase(
        workload=wl,
        message_length=L,
        priority="index",
        vc_ids=vc_ids,
        checks=checks,
        info={
            "n": n,
            "hops": hops,
            "L": L,
            "dateline": vc_ids is not None,
            "cdg_acyclic": acyclic,
        },
    )


@register_scenario(
    "hotspot-mesh",
    family="deadlock",
    theorem="Section 1.2 (adaptive routing)",
    models=("adaptive",),
)
def _build_hotspot_mesh(
    B: int = 1,
    k: int = 6,
    messages_per_node: int = 1,
    fraction: float = 0.3,
    hotspot: int = 0,
    policy: str = "west-first",
    seed: int = 7,
) -> ScenarioCase:
    """Hot-spot traffic on a ``k x k`` mesh under the adaptive router:
    a ``fraction`` of all messages converge on one node.  West-first
    turn routing must stay deadlock-free; ``policy="fully-adaptive"``
    gives the deadlock-prone variant."""
    from ..network.mesh import KAryNCube
    from ..routing.traffic import hotspot_traffic

    cube = KAryNCube(int(k), 2, wrap=False)
    rng = np.random.default_rng(int(seed))
    demands = [
        (s, d)
        for s, d in hotspot_traffic(
            cube, int(messages_per_node), int(hotspot), float(fraction), rng
        )
        if s != d
    ]
    L = 2 * int(k)
    wl = Workload(
        net=cube.network,
        demands=demands,
        cube=cube,
        default_length=L,
        info={"k": int(k), "messages": len(demands)},
    )
    return ScenarioCase(
        workload=wl,
        message_length=L,
        policy=str(policy),
        checks=[_delivery_check()],
        info={
            "k": int(k),
            "hotspot": int(hotspot),
            "fraction": float(fraction),
            "policy": str(policy),
            "messages": len(demands),
            "L": L,
        },
    )


# ----------------------------------------------------------------------
# arrival family (continuous model / service load profiles)
# ----------------------------------------------------------------------


def _layered_arrival_case(
    width: int, depth: int, out_degree: int, net_seed: int
):
    from ..network.random_networks import layered_network

    rng = np.random.default_rng(int(net_seed))
    net = layered_network(int(width), int(depth), int(out_degree), rng)

    def path_of(source: int, prng: np.random.Generator) -> list[int]:
        node = int(source)
        edges: list[int] = []
        for _ in range(int(depth)):
            out = net.out_edges(node)
            e = out[int(prng.integers(len(out)))]
            edges.append(e)
            node = net.head(e)
        return edges

    return net, path_of


@register_scenario(
    "bursty-arrivals",
    family="arrival",
    theorem="Scheideler-Vocking [43] (continuous regime)",
    kind="continuous",
    models=("continuous",),
)
def _build_bursty_arrivals(
    B: int = 1,
    width: int = 6,
    depth: int = 5,
    out_degree: int = 2,
    burst_rate: float = 0.6,
    idle_rate: float = 0.02,
    burst_len: int = 40,
    period: int = 120,
    horizon: int = 600,
    message_length: int = 6,
    net_seed: int = 3,
) -> ScenarioCase:
    """A square-wave arrival trace: ``burst_len`` steps at ``burst_rate``
    then quiet at ``idle_rate``, repeating every ``period`` steps — the
    open-loop analogue of batch bursts, for backlog-drain behaviour."""
    net, path_of = _layered_arrival_case(width, depth, out_degree, net_seed)
    t = np.arange(int(horizon))
    rate = np.where(
        (t % int(period)) < int(burst_len), float(burst_rate), float(idle_rate)
    )
    wl = Workload(net=net, info={"width": int(width), "depth": int(depth)})
    return ScenarioCase(
        kind="continuous",
        workload=wl,
        message_length=int(message_length),
        num_sources=int(width),
        path_of=path_of,
        rate=rate,
        horizon=int(horizon),
        checks=[_conservation_check()],
        info={
            "mean_rate": float(rate.mean()),
            "burst_rate": float(burst_rate),
            "period": int(period),
            "horizon": int(horizon),
            "L": int(message_length),
        },
    )


@register_scenario(
    "heavy-tail-arrivals",
    family="arrival",
    theorem="Scheideler-Vocking [43] (continuous regime)",
    kind="continuous",
    models=("continuous",),
)
def _build_heavy_tail_arrivals(
    B: int = 1,
    width: int = 6,
    depth: int = 5,
    out_degree: int = 2,
    base_rate: float = 0.05,
    alpha: float = 1.5,
    cap: float = 0.9,
    horizon: int = 600,
    message_length: int = 6,
    net_seed: int = 3,
    trace_seed: int = 11,
) -> ScenarioCase:
    """A Pareto-modulated arrival trace (``alpha < 2``: infinite-variance
    bursts), seeded and deterministic — heavy-tailed load the uniform
    Bernoulli model never produces."""
    net, path_of = _layered_arrival_case(width, depth, out_degree, net_seed)
    rng = np.random.default_rng(int(trace_seed))
    rate = np.clip(
        float(base_rate) * (1.0 + rng.pareto(float(alpha), int(horizon))),
        0.0,
        float(cap),
    )
    wl = Workload(net=net, info={"width": int(width), "depth": int(depth)})
    return ScenarioCase(
        kind="continuous",
        workload=wl,
        message_length=int(message_length),
        num_sources=int(width),
        path_of=path_of,
        rate=rate,
        horizon=int(horizon),
        checks=[_conservation_check()],
        info={
            "mean_rate": float(rate.mean()),
            "max_rate": float(rate.max()),
            "alpha": float(alpha),
            "horizon": int(horizon),
            "L": int(message_length),
        },
    )
