"""Adversarial scenario library: named hard cases with declared expectations.

``repro.scenarios`` packages the paper's worst-case constructions (and the
deadlock / open-loop hard cases around them) as registry entries that can
be built for any virtual-channel count, run through :func:`repro.simulate`
on any declared model or backend, and judged against the theorem-derived
invariants in :mod:`repro.fuzz.invariants`.

>>> from repro.scenarios import get_scenario
>>> run = get_scenario("lower-bound-gadget").run(B=2)
>>> run.ok, run.summary()["makespan"] >= run.case.info["lower_bound"]
(True, True)
"""

from .base import (
    SCENARIOS,
    CheckFn,
    Scenario,
    ScenarioCase,
    ScenarioRun,
    get_scenario,
    register_scenario,
)
from . import library  # noqa: F401  (imports register the built-in scenarios)

__all__ = [
    "CheckFn",
    "SCENARIOS",
    "Scenario",
    "ScenarioCase",
    "ScenarioRun",
    "get_scenario",
    "register_scenario",
]
