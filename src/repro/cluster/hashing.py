"""Consistent hashing of batch-compat keys onto worker slots.

The router shards ``run`` requests by their
:func:`~repro.sim.batch.batch_compat_key` — the tuple that decides
whether two trials may share a lockstep batch.  Routing on *that* key
(rather than on the request id or a round-robin counter) is what makes
sharding compose with batching: every request that could coalesce into
one batch hashes to the same worker, so N workers still see full-width
batches instead of each receiving a sliver of every key.

A consistent-hash ring keeps the key→worker map stable under
membership change: when one of N workers is evicted, only ~1/N of the
key space remaps (to ring neighbours) instead of reshuffling
everything, so a single crash doesn't cold-start every worker's batch
stream.  Each node is placed at :data:`DEFAULT_REPLICAS` pseudo-random
ring positions (virtual nodes) derived from SHA-256, which evens out
the key-space share each worker owns.

Everything is derived from stable string hashes — no process-local
salt — so every router process (and a test asserting placement) maps
the same key to the same slot.
"""

from __future__ import annotations

import bisect
import hashlib
from collections.abc import Iterable, Set

__all__ = ["DEFAULT_REPLICAS", "HashRing"]

#: Virtual nodes per real node.  64 keeps the largest/smallest key-space
#: share within a few percent for small clusters while the ring stays
#: tiny (N*64 ints).
DEFAULT_REPLICAS = 64


def _position(label: str) -> int:
    """A stable 64-bit ring position for a vnode or key label."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring mapping string keys to member nodes.

    Nodes are arbitrary hashable, stringable identifiers (the cluster
    uses worker slot indices).  Deterministic: the mapping depends only
    on the member set and ``replicas``, never on insertion order or
    process state.
    """

    def __init__(
        self, nodes: Iterable[int | str] = (), *, replicas: int = DEFAULT_REPLICAS
    ) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._nodes: set[int | str] = set()
        #: Sorted vnode positions, parallel to ``_owners``.
        self._ring: list[int] = []
        self._owners: list[int | str] = []
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: int | str) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> frozenset[int | str]:
        return frozenset(self._nodes)

    def _rebuild(self) -> None:
        pairs = sorted(
            (_position(f"node:{node}:{replica}"), node)
            for node in self._nodes
            for replica in range(self.replicas)
        )
        self._ring = [pos for pos, _ in pairs]
        self._owners = [node for _, node in pairs]

    def add(self, node: int | str) -> None:
        """Add a node (idempotent)."""
        if node not in self._nodes:
            self._nodes.add(node)
            self._rebuild()

    def remove(self, node: int | str) -> None:
        """Remove a node (idempotent); its vnodes fall to ring neighbours."""
        if node in self._nodes:
            self._nodes.discard(node)
            self._rebuild()

    def node_for(
        self, key: str, *, exclude: Set[int | str] = frozenset()
    ) -> int | str:
        """The node owning ``key``: first vnode clockwise of its position.

        ``exclude`` skips nodes *without* mutating the ring — the
        router's crash fallback: when ``key``'s home worker is mid-
        restart, the request walks clockwise to the next distinct live
        owner, and once the home worker returns the key maps straight
        back (no remap churn from the transient).
        """
        candidates = self._nodes - set(exclude)
        if not candidates:
            raise ValueError(
                "no eligible nodes on the ring"
                + (f" (all {len(self._nodes)} excluded)" if self._nodes else "")
            )
        start = bisect.bisect_right(self._ring, _position(f"key:{key}"))
        n = len(self._ring)
        for step in range(n):
            owner = self._owners[(start + step) % n]
            if owner in candidates:
                return owner
        raise AssertionError("unreachable: candidates is non-empty")
