"""Worker lifecycle: spawn, watch, respawn ``repro serve`` processes.

Each cluster worker is a full :class:`~repro.service.server
.SimulationService` in its own process — spawned as ``python -m repro
serve --port 0 --port-file <f>`` so the OS picks an ephemeral port and
the supervisor reads it back from the (atomically written) port file.

Supervision reuses the :mod:`repro.exec` crash-recovery discipline one
level up the stack: the :class:`~repro.exec.process.ProcessPoolBackend`
restarts crashed *pool workers* under a batch; the
:class:`WorkerSupervisor` restarts crashed *service processes* under
the router, with the same bounded exponential backoff
(``backoff_base_s * 2**consecutive_failures``) and the same
:class:`~repro.exec.base.ExecStats` counter vocabulary
(``worker_restarts`` / ``failures``), so ``health`` reads identically
whichever layer recovered.

A respawned worker keeps its ring *slot*: consistent hashing maps keys
to slot indices, not PIDs, so recovery changes no key placement — the
keys simply wait out (or fall back around, see
:meth:`~repro.cluster.hashing.HashRing.node_for`) the restart window.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..exec.base import ExecStats

__all__ = ["ClusterWorkerConfig", "WorkerHandle", "WorkerSupervisor"]


@dataclass(frozen=True)
class ClusterWorkerConfig:
    """How to spawn and police one tier of worker processes."""

    workers: int = 2
    host: str = "127.0.0.1"
    #: Per-worker service tunables (forwarded to ``repro serve``).
    queue_limit: int = 64
    max_batch: int = 32
    max_wait_ms: float = 2.0
    #: Execution backend *inside* each worker.  Workers are already
    #: separate processes, so the in-worker default stays ``thread``.
    backend: str = "thread"
    backend_workers: int = 1
    #: Seconds to wait for a spawned worker to publish its port.
    spawn_timeout_s: float = 60.0
    #: Consecutive failed respawns of one slot before giving up on it.
    max_respawns: int = 5
    backoff_base_s: float = 0.25
    #: Port files + worker logs live here (a tempdir when unset).
    runtime_dir: str | None = None


@dataclass
class WorkerHandle:
    """One live (or respawning) worker slot."""

    slot: int
    process: subprocess.Popen | None = None
    port: int | None = None
    port_file: Path | None = None
    log_file: Path | None = None
    #: Bumped on every respawn; lets the router tell "the worker I
    #: failed against" from "the replacement that since came up".
    generation: int = 0
    consecutive_failures: int = 0
    #: Set when the slot exhausted its respawn budget.
    failed: bool = False

    @property
    def alive(self) -> bool:
        return (
            self.process is not None
            and self.process.poll() is None
            and self.port is not None
        )


def _worker_env() -> dict[str, str]:
    """Child env with this checkout importable regardless of install."""
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing else src_root + os.pathsep + existing
    )
    return env


class WorkerSupervisor:
    """Spawns N worker services and keeps them alive.

    Drive it from the router's event loop: :meth:`start` brings every
    slot up (blocking until each publishes its port), :meth:`monitor`
    is a long-running task respawning dead slots with backoff, and
    :meth:`stop` drains the tier (graceful ``shutdown`` op first,
    escalating to terminate/kill).
    """

    def __init__(self, config: ClusterWorkerConfig | None = None) -> None:
        self.config = config or ClusterWorkerConfig()
        if self.config.workers < 1:
            raise ValueError(f"need >= 1 worker, got {self.config.workers}")
        self.stats = ExecStats("cluster")
        self.handles: list[WorkerHandle] = [
            WorkerHandle(slot=slot) for slot in range(self.config.workers)
        ]
        self._stopping = False
        self._owns_runtime_dir = self.config.runtime_dir is None
        self.runtime_dir = Path(
            self.config.runtime_dir
            or tempfile.mkdtemp(prefix="repro-cluster-")
        )
        self.runtime_dir.mkdir(parents=True, exist_ok=True)
        #: Signalled whenever any slot changes liveness (respawn done);
        #: the router awaits it while a forward target is down.
        self.changed = asyncio.Event()

    # -- spawning ------------------------------------------------------
    def _command(self, handle: WorkerHandle) -> list[str]:
        cfg = self.config
        return [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            cfg.host,
            "--port",
            "0",
            "--port-file",
            str(handle.port_file),
            "--queue-limit",
            str(cfg.queue_limit),
            "--max-batch",
            str(cfg.max_batch),
            "--max-wait-ms",
            str(cfg.max_wait_ms),
            "--backend",
            cfg.backend,
            "--workers",
            str(cfg.backend_workers),
        ]

    async def _spawn(self, handle: WorkerHandle) -> None:
        """(Re)launch one slot and wait for it to publish its port."""
        handle.generation += 1
        handle.port = None
        handle.port_file = (
            self.runtime_dir / f"worker{handle.slot}.g{handle.generation}.port"
        )
        handle.log_file = self.runtime_dir / f"worker{handle.slot}.log"
        with open(handle.log_file, "ab") as log:
            handle.process = subprocess.Popen(
                self._command(handle),
                stdout=log,
                stderr=subprocess.STDOUT,
                env=_worker_env(),
                cwd=str(self.runtime_dir),
            )
        self.stats.counters.bump("submitted")
        deadline = time.monotonic() + self.config.spawn_timeout_s
        while time.monotonic() < deadline:
            if handle.process.poll() is not None:
                raise RuntimeError(
                    f"worker slot {handle.slot} exited rc="
                    f"{handle.process.returncode} during startup "
                    f"(log: {handle.log_file})"
                )
            try:
                text = handle.port_file.read_text().strip()
            except OSError:
                text = ""
            if text:
                handle.port = int(text)
                handle.consecutive_failures = 0
                self.stats.counters.bump("completed")
                return
            await asyncio.sleep(0.05)
        raise RuntimeError(
            f"worker slot {handle.slot} did not publish a port within "
            f"{self.config.spawn_timeout_s}s (log: {handle.log_file})"
        )

    async def start(self) -> None:
        """Bring every slot up; raises if any fails its first spawn."""
        await asyncio.gather(*(self._spawn(h) for h in self.handles))

    # -- supervision ---------------------------------------------------
    def address(self, slot: int) -> tuple[str, int]:
        handle = self.handles[slot]
        if handle.port is None:
            raise RuntimeError(f"worker slot {slot} has no port (down)")
        return self.config.host, handle.port

    def live_slots(self) -> list[int]:
        return [h.slot for h in self.handles if h.alive]

    async def monitor(self, poll_s: float = 0.1) -> None:
        """Respawn dead slots until :meth:`stop`; run as a task."""
        while not self._stopping:
            for handle in self.handles:
                if self._stopping or handle.failed or handle.alive:
                    continue
                if handle.process is not None and handle.port is not None:
                    # Died after a healthy startup: a crash, not a
                    # spawn failure.
                    self.stats.counters.bump("worker_restarts")
                handle.port = None
                handle.consecutive_failures += 1
                if handle.consecutive_failures > self.config.max_respawns:
                    handle.failed = True
                    self.stats.counters.bump("failures")
                    self.changed.set()
                    continue
                backoff = self.config.backoff_base_s * (
                    2 ** (handle.consecutive_failures - 1)
                )
                await asyncio.sleep(backoff)
                try:
                    await self._spawn(handle)
                    self.stats.counters.bump("retried")
                except RuntimeError:
                    continue  # next pass backs off harder
                self.changed.set()
            await asyncio.sleep(poll_s)

    # -- shutdown ------------------------------------------------------
    async def stop(self, *, grace_s: float = 10.0) -> None:
        """Drain the tier: shutdown op, then terminate, then kill."""
        self._stopping = True
        from ..service.client import ServiceClient, ServiceConnectionError

        async def drain(handle: WorkerHandle) -> None:
            if handle.process is None:
                return
            if handle.alive:
                try:
                    async with await ServiceClient.connect(
                        self.config.host, handle.port
                    ) as client:
                        await client.request(
                            {"op": "shutdown", "id": "cluster-drain"},
                            timeout_s=grace_s,
                        )
                except (OSError, ServiceConnectionError, ValueError):
                    pass  # already dying; escalate below
            try:
                await asyncio.wait_for(
                    asyncio.to_thread(handle.process.wait), grace_s
                )
            except (asyncio.TimeoutError, TimeoutError):
                handle.process.terminate()
                try:
                    await asyncio.wait_for(
                        asyncio.to_thread(handle.process.wait), 2.0
                    )
                except (asyncio.TimeoutError, TimeoutError):
                    handle.process.kill()
                    await asyncio.to_thread(handle.process.wait)

        await asyncio.gather(*(drain(h) for h in self.handles))

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe per-slot + counter view for ``health``/``stats``."""
        return {
            **self.stats.snapshot(),
            "slots": [
                {
                    "slot": h.slot,
                    "alive": h.alive,
                    "port": h.port,
                    "generation": h.generation,
                    "failed": h.failed,
                }
                for h in self.handles
            ],
        }
