"""``repro.cluster`` — the sharded multi-worker service tier.

One front-end router process speaks the existing v1 wire protocol
(:mod:`repro.service.protocol`) and multiplexes many logical request
streams onto N :mod:`repro.service` worker processes — the serving
analog of the paper's virtual channels multiplexing logical channels
onto one physical link:

* :mod:`~repro.cluster.hashing` — a deterministic consistent-hash
  ring over worker slots, keyed by
  :func:`~repro.sim.batch.batch_compat_key`, so *compatible* requests
  land on the same worker and coalesce into the large lockstep batches
  the kernels are fast at;
* :mod:`~repro.cluster.worker` — worker lifecycle: spawn ``repro
  serve`` subprocesses on ephemeral ports, watch liveness, respawn
  crashed workers with bounded exponential backoff (the
  :mod:`repro.exec` crash-recovery discipline, one level up);
* :mod:`~repro.cluster.router` — the acceptor: admission, a
  persistent cross-worker :class:`~repro.cache.ResultCache` consulted
  before any forward, per-request retry/fallback so a worker crash
  never drops an accepted request, aggregated ``health``/``stats``.

Usage::

    # router + 2 workers, one process tree
    repro cluster serve --port 7900 --workers 2

    # any v1 client works unchanged
    repro loadgen --port 7900 --requests 64 --shutdown
"""

from .hashing import HashRing
from .router import ClusterConfig, ClusterRouter, serve_cluster
from .worker import ClusterWorkerConfig, WorkerHandle, WorkerSupervisor

__all__ = [
    "ClusterConfig",
    "ClusterRouter",
    "ClusterWorkerConfig",
    "HashRing",
    "WorkerHandle",
    "WorkerSupervisor",
    "serve_cluster",
]
