"""``repro bench --cluster`` — throughput scaling + cache hit rate.

Two measurements against live tiers, written to ``BENCH_cluster.json``:

``scaling``
    The same *multi-key* loadgen run (several simulators × message
    lengths, so consistent hashing has distinct compat keys to spread)
    against tiers of 1, 2 and 4 workers.  Every response is replayed
    serially — the bit-exactness gate holds at every width.  On a
    multi-core host throughput should rise with workers
    (``speedup_4v1``); a single-core host honestly reports ~1x (the
    committed numbers carry ``machine.cpus`` for exactly this reason).

``cache``
    One 2-worker tier, the same repeated-seed loadgen run twice.  The
    first pass populates the shared result cache (all misses + stores),
    the second is answered from it (``second_pass.hit_rate`` ~ 1.0,
    computed as the between-pass counter delta) — the cross-worker
    cache demonstrably serving repeat traffic without worker compute.
"""

from __future__ import annotations

import asyncio
from typing import Any

from ..service.client import LoadgenConfig, run_loadgen
from .router import ClusterConfig, ClusterRouter
from .worker import ClusterWorkerConfig

__all__ = ["run_cluster_bench"]

#: Four flit-level models x two lengths = 8 batch-compat keys: enough
#: distinct keys that a 4-worker ring gets real spread.
BENCH_SIMULATORS = ("wormhole", "cut_through", "store_forward", "restricted")
BENCH_LENGTHS = (8, 16)


def _loadgen_config(quick: bool, root_seed: int) -> LoadgenConfig:
    return LoadgenConfig(
        workload="chain-bundle",
        workload_params={"chains": 4, "depth": 10, "messages": 6},
        simulators=BENCH_SIMULATORS,
        lengths=BENCH_LENGTHS,
        channels=(1, 2, 4),
        requests=48 if quick else 144,
        concurrency=12,
        root_seed=root_seed,
        verify=True,
    )


async def _run_tier(
    workers: int, config: LoadgenConfig, *, passes: int = 1
) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """Spin a tier up, drive it ``passes`` times, drain it."""
    router = ClusterRouter(
        ClusterConfig(
            port=0,
            workers=workers,
            worker=ClusterWorkerConfig(workers=workers),
        )
    )
    task = asyncio.create_task(router.run())
    await router.started.wait()
    try:
        reports = []
        for _ in range(passes):
            reports.append(
                await run_loadgen("127.0.0.1", router.port, config)
            )
    finally:
        router.request_shutdown()
        await task
    return reports, router._health()


def _pass_summary(report: dict[str, Any]) -> dict[str, Any]:
    return {
        "throughput_rps": report["throughput_rps"],
        "wall_s": report["wall_s"],
        "ok": report["ok"],
        "statuses": report["statuses"],
        "bit_exact": report["bit_exact"],
        "latency_p50_ms": report["latency_ms"]["p50"],
        "latency_p95_ms": report["latency_ms"]["p95"],
        "mean_batch": report["client_mean_batch"],
    }


def _cache_counts(report: dict[str, Any]) -> tuple[int, int]:
    cache = (report.get("server") or {}).get("cache") or {}
    return int(cache.get("cache_hits", 0)), int(cache.get("cache_misses", 0))


async def run_cluster_bench(
    *, quick: bool = False, root_seed: int = 0
) -> dict[str, Any]:
    """The ``BENCH_cluster.json`` payload (sans ``machine``)."""
    config = _loadgen_config(quick, root_seed)
    bit_exact = True

    scaling: dict[str, Any] = {}
    for workers in (1, 2, 4):
        reports, health = await _run_tier(workers, config)
        summary = _pass_summary(reports[0])
        summary["worker_restarts"] = health["worker_restarts"]
        scaling[str(workers)] = summary
        bit_exact &= bool(summary["bit_exact"])
        print(
            f"bench cluster: {workers} worker(s) -> "
            f"{summary['throughput_rps']} req/s "
            f"(ok {summary['ok']}/{config.requests}, "
            f"bit_exact {summary['bit_exact']})",
            flush=True,
        )

    rps1 = scaling["1"]["throughput_rps"]
    rps4 = scaling["4"]["throughput_rps"]
    speedup = round(rps4 / rps1, 3) if rps1 else 0.0

    cache_reports, cache_health = await _run_tier(2, config, passes=2)
    first, second = cache_reports
    h1, m1 = _cache_counts(first)
    h2, m2 = _cache_counts(second)
    delta_hits = h2 - h1
    delta_lookups = (h2 + m2) - (h1 + m1)
    bit_exact &= bool(first["bit_exact"]) and bool(second["bit_exact"])
    print(
        f"bench cluster: repeated-seed pass -> {delta_hits}/{delta_lookups} "
        f"cache hits (tier totals: {cache_health['cache']})",
        flush=True,
    )

    return {
        "config": {
            "workload": config.workload,
            "workload_params": dict(config.workload_params),
            "simulators": list(config.simulators),
            "lengths": list(config.lengths),
            "channels": list(config.channels),
            "requests": config.requests,
            "concurrency": config.concurrency,
            "root_seed": config.root_seed,
            "quick": quick,
        },
        "scaling": scaling,
        "speedup_4v1": speedup,
        "cache": {
            "first_pass": {
                **_pass_summary(first),
                "hits": h1,
                "misses": m1,
            },
            "second_pass": {
                **_pass_summary(second),
                "hits": delta_hits,
                "lookups": delta_lookups,
                "hit_rate": (
                    round(delta_hits / delta_lookups, 4)
                    if delta_lookups
                    else 0.0
                ),
            },
            "tier": cache_health["cache"],
        },
        "bit_exact": bit_exact,
    }
