"""The cluster front-end: one v1-protocol endpoint over N workers.

:class:`ClusterRouter` is wire-compatible with a single
:class:`~repro.service.server.SimulationService` — ``repro loadgen``
and every existing client work unchanged — but behind the acceptor it:

1. answers repeat ``run`` requests from the shared
   :class:`~repro.cache.ResultCache` (keyed by
   :meth:`~repro.sim.sweep.TrialSpec.cache_key`, the sweep's content
   hash) *before* spending any worker compute — cache hits carry
   ``"cached": true`` and ``batched: 0``;
2. shards misses across workers by consistent hashing on
   :func:`~repro.service.batcher.batch_compat_key`, so every request
   that *could* share a lockstep batch reaches the same worker's
   :class:`~repro.service.batcher.DynamicBatcher` and actually does;
3. retries a forward whose worker died mid-flight: the
   :class:`~repro.cluster.worker.WorkerSupervisor` respawns the slot
   while the router backs off, falls back to the key's next ring
   neighbour if the home slot stays down, and only after the attempt
   budget is spent answers ``rejected`` with ``retry_after_ms`` — an
   accepted request is retried or rejected-with-retry, never dropped.
   Re-execution is safe because trials are pure functions of
   ``(spec, root_seed)``: a replayed forward is bit-identical.

``health``/``stats`` aggregate the tier: router counters + cache
hit/miss + per-slot liveness + summed worker batch occupancy, with
``worker_restarts`` surfaced top-level exactly like the process
backend's, so the crash-recovery smoke reads either layer the same way.
"""

from __future__ import annotations

import asyncio
import contextlib
from dataclasses import dataclass, field
from typing import Any

from ..cache import ResultCache
from ..telemetry.metrics import EventCounter, LatencyRecorder
from ..service.batcher import batch_compat_key
from ..service.client import ServiceClient, ServiceConnectionError
from ..service.protocol import (
    MODE_ESTIMATE,
    PROTOCOL_VERSION,
    STATUS_OK,
    ProtocolError,
    RunRequest,
    UnknownModeError,
    UnsupportedVersionError,
    check_version,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    parse_run_request,
    reject_response,
    unknown_mode_response,
    unsupported_version_response,
)
from ..service.server import MAX_LINE_BYTES
from .hashing import HashRing
from .worker import ClusterWorkerConfig, WorkerSupervisor

__all__ = ["ClusterConfig", "ClusterRouter", "serve_cluster"]


@dataclass(frozen=True)
class ClusterConfig:
    """Tunables for one router + worker tier."""

    host: str = "127.0.0.1"
    port: int = 7900
    workers: int = 2
    #: Cross-worker result cache directory.  ``None`` puts it under the
    #: supervisor's runtime dir (fresh per tier); point several tiers
    #: at one directory to share results across routers.
    cache_dir: str | None = None
    #: Per-forward exchange budget; a worker that neither answers nor
    #: dies within this window counts as a failed attempt.
    forward_timeout_s: float = 300.0
    #: Forward attempts per request before the structured reject.
    max_forward_attempts: int = 4
    #: Base of the between-attempt backoff (doubles per attempt).
    retry_backoff_s: float = 0.05
    drain_retry_after_ms: float = 1000.0
    #: ``retry_after_ms`` hint when the attempt budget is exhausted.
    unavailable_retry_after_ms: float = 500.0
    #: The worker tier (spawn/respawn policy, per-worker service knobs).
    worker: ClusterWorkerConfig = field(default_factory=ClusterWorkerConfig)

    def worker_config(self) -> ClusterWorkerConfig:
        """The tier config with the router's worker count applied."""
        if self.worker.workers == self.workers:
            return self.worker
        from dataclasses import replace

        return replace(self.worker, workers=self.workers)


class RouterStats:
    """Router-side counters (worker internals stay on the workers)."""

    def __init__(self) -> None:
        self.counters = EventCounter(
            "requests_total",
            "completed",
            "estimated",
            "cache_served",
            "forwarded",
            "forward_retries",
            "rejected_draining",
            "rejected_unavailable",
            "errors",
            "protocol_errors",
        )
        self.latency = LatencyRecorder()


class ClusterRouter:
    """One router instance: call :meth:`run` (blocks until drained)."""

    def __init__(self, config: ClusterConfig | None = None) -> None:
        self.config = config or ClusterConfig()
        if self.config.workers < 1:
            raise ValueError(f"need >= 1 worker, got {self.config.workers}")
        self.supervisor = WorkerSupervisor(self.config.worker_config())
        self.cache = ResultCache(
            self.config.cache_dir or self.supervisor.runtime_dir / "cache"
        )
        self.ring = HashRing(range(self.config.workers))
        self.stats = RouterStats()
        self.started = asyncio.Event()
        self.port: int | None = None
        self._shutdown = asyncio.Event()
        self._draining = False
        self._writers: set[asyncio.StreamWriter] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._in_flight = 0
        self._all_flushed = asyncio.Event()
        self._all_flushed.set()
        self._started_at: float | None = None
        #: Idle pooled connections per (slot, generation).
        self._pool: dict[tuple[int, int], list[ServiceClient]] = {}

    # -- lifecycle -----------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    def request_shutdown(self) -> None:
        """Begin the graceful drain (idempotent, callable from signals)."""
        self._draining = True
        self._shutdown.set()

    async def run(self) -> None:
        """Spawn the tier, listen, route, drain; returns when done."""
        loop = asyncio.get_running_loop()
        self._started_at = loop.time()
        await self.supervisor.start()
        monitor = asyncio.create_task(
            self.supervisor.monitor(), name="repro-cluster-monitor"
        )
        server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=MAX_LINE_BYTES,
        )
        self.port = server.sockets[0].getsockname()[1]
        self.started.set()
        try:
            await self._shutdown.wait()
        finally:
            self.request_shutdown()
            # 1. Stop accepting new connections; new runs on live
            #    connections are rejected as draining.
            server.close()
            await server.wait_closed()
            # 2. Let every in-flight forward resolve and flush.
            await self._all_flushed.wait()
            # 3. Drain the worker tier (their own queued work flushes).
            monitor.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await monitor
            await self._close_pool()
            await self.supervisor.stop()
            # 4. Close lingering connections; handlers exit on EOF.
            for writer in list(self._writers):
                writer.close()
            if self._conn_tasks:
                await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    # -- worker connection pool ----------------------------------------
    async def _acquire(self, slot: int) -> tuple[ServiceClient, int]:
        generation = self.supervisor.handles[slot].generation
        idle = self._pool.get((slot, generation))
        if idle:
            return idle.pop(), generation
        host, port = self.supervisor.address(slot)
        client = await ServiceClient.connect(host, port)
        return client, generation

    def _release(self, slot: int, generation: int, client: ServiceClient) -> None:
        if (
            self._draining
            or self.supervisor.handles[slot].generation != generation
        ):
            asyncio.ensure_future(client.close())
            return
        self._pool.setdefault((slot, generation), []).append(client)

    async def _discard_pool(self, slot: int) -> None:
        """Close every idle connection to a slot (it just died)."""
        for key in [k for k in self._pool if k[0] == slot]:
            for client in self._pool.pop(key):
                await client.close()

    async def _close_pool(self) -> None:
        for clients in self._pool.values():
            for client in clients:
                await client.close()
        self._pool.clear()

    # -- connection handling (mirrors SimulationService) ---------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                ):
                    break
                if not line:
                    break
                await self._handle_line(line, writer)
        except ConnectionResetError:
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _handle_line(
        self, line: bytes, writer: asyncio.StreamWriter
    ) -> None:
        try:
            msg = decode_message(line)
        except ProtocolError as exc:
            self.stats.counters.bump("protocol_errors")
            await self._send(writer, error_response(None, str(exc)))
            return
        op = msg.get("op")
        req_id = msg.get("id") if isinstance(msg.get("id"), str) else ""
        try:
            check_version(msg)
        except UnsupportedVersionError as exc:
            self.stats.counters.bump("protocol_errors")
            await self._send(
                writer, unsupported_version_response(req_id, exc.got)
            )
            return
        if op == "run":
            await self._handle_run(msg, writer)
        elif op == "health":
            await self._send(
                writer, {"v": PROTOCOL_VERSION, "id": req_id, **self._health()}
            )
        elif op == "stats":
            snapshot = await self._stats_snapshot()
            await self._send(
                writer, {"v": PROTOCOL_VERSION, "id": req_id, **snapshot}
            )
        elif op == "shutdown":
            await self._send(
                writer,
                {
                    "v": PROTOCOL_VERSION,
                    "id": req_id,
                    "status": "ok",
                    "draining": True,
                },
            )
            self.request_shutdown()
        else:
            self.stats.counters.bump("protocol_errors")
            await self._send(
                writer, error_response(req_id, f"unknown op {op!r}")
            )

    # -- the routed run path -------------------------------------------
    async def _handle_run(
        self, msg: dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        loop = asyncio.get_running_loop()
        self.stats.counters.bump("requests_total")
        try:
            request = parse_run_request(msg)
        except UnknownModeError as exc:
            self.stats.counters.bump("protocol_errors")
            await self._send(
                writer, unknown_mode_response(msg.get("id"), exc.got)
            )
            return
        except ProtocolError as exc:
            self.stats.counters.bump("protocol_errors")
            await self._send(writer, error_response(msg.get("id"), str(exc)))
            return
        if request.mode == MODE_ESTIMATE:
            # Estimates are answered on the router from closed form —
            # bit-stable pure functions of the spec — without touching
            # any worker's queue or batcher (and, like health/stats,
            # even while draining).
            t0 = loop.time()
            response = self._estimate_response(request)
            if response.get("status") == STATUS_OK:
                self.stats.counters.bump("completed")
                self.stats.latency.record(loop.time() - t0)
            await self._send(writer, response)
            return
        if self._draining:
            self.stats.counters.bump("rejected_draining")
            await self._send(
                writer,
                reject_response(
                    request.id,
                    "draining",
                    retry_after_ms=self.config.drain_retry_after_ms,
                ),
            )
            return
        self._in_flight += 1
        self._all_flushed.clear()
        t0 = loop.time()
        try:
            response = await self._route(request)
        finally:
            self._in_flight -= 1
            if self._in_flight == 0:
                self._all_flushed.set()
        if response.get("status") == STATUS_OK:
            self.stats.counters.bump("completed")
            self.stats.latency.record(loop.time() - t0)
        await self._send(writer, response)

    def _estimate_response(self, request: RunRequest) -> dict[str, Any]:
        """Answer an estimate request locally from the analytic envelope."""
        from ..analysis.estimate import estimate_spec
        from ..network.graph import NetworkError

        try:
            metrics = estimate_spec(request.spec).to_metrics()
        except NetworkError as exc:
            self.stats.counters.bump("errors")
            return error_response(request.id, str(exc))
        self.stats.counters.bump("estimated")
        return ok_response(
            request.id, metrics, batched=0, queue_ms=0.0, mode=MODE_ESTIMATE
        )

    async def _route(self, request: RunRequest) -> dict[str, Any]:
        """Cache lookup, then shard-and-forward with retry/fallback."""
        spec = request.spec
        cache_key = spec.cache_key(request.root_seed)
        cached = self.cache.load(cache_key, spec.key())
        if cached is not None:
            self.stats.counters.bump("cache_served")
            return {
                "v": PROTOCOL_VERSION,
                "id": request.id,
                "status": STATUS_OK,
                "metrics": cached,
                "batched": 0,
                "queue_ms": 0.0,
                "cached": True,
                "provenance": "cache",
            }
        shard_key = repr(batch_compat_key(spec))
        # The one run-request schema: re-serialize the parsed request
        # instead of re-assembling a raw dict field by field.
        forward = request.to_wire()
        timeout_s = self.config.forward_timeout_s
        if request.timeout_s is not None:
            timeout_s = min(timeout_s, request.timeout_s)
        tried_down: set[int] = set()
        for attempt in range(self.config.max_forward_attempts):
            if attempt:
                self.stats.counters.bump("forward_retries")
                await asyncio.sleep(
                    self.config.retry_backoff_s * 2 ** (attempt - 1)
                )
            slot = self._pick_slot(shard_key, tried_down)
            if slot is None:
                # Whole tier down right now; wait out a respawn.
                self.supervisor.changed.clear()
                with contextlib.suppress(asyncio.TimeoutError, TimeoutError):
                    await asyncio.wait_for(
                        self.supervisor.changed.wait(),
                        self.config.worker.spawn_timeout_s,
                    )
                tried_down.clear()
                continue
            try:
                client, generation = await self._acquire(slot)
            except (OSError, RuntimeError):
                tried_down.add(slot)
                continue
            try:
                response = await client.request(
                    dict(forward), timeout_s=timeout_s
                )
            except ServiceConnectionError:
                # Worker died mid-flight: poison the pool, remember the
                # slot is suspect, and retry (elsewhere if needed).
                await client.close()
                await self._discard_pool(slot)
                tried_down.add(slot)
                continue
            self._release(slot, generation, client)
            self.stats.counters.bump("forwarded")
            if response.get("status") == STATUS_OK and isinstance(
                response.get("metrics"), dict
            ):
                self.cache.store(
                    cache_key, spec.key(), response["metrics"], request.root_seed
                )
            response["worker"] = slot
            return response
        self.stats.counters.bump("rejected_unavailable")
        return reject_response(
            request.id,
            "workers unavailable; request not executed",
            retry_after_ms=self.config.unavailable_retry_after_ms,
        )

    def _pick_slot(self, shard_key: str, tried_down: set[int]) -> int | None:
        """The key's home slot, else its next live ring neighbour."""
        down = {
            h.slot
            for h in self.supervisor.handles
            if not h.alive or h.failed
        } | tried_down
        try:
            return self.ring.node_for(shard_key, exclude=down)
        except ValueError:
            return None

    async def _send(
        self, writer: asyncio.StreamWriter, msg: dict[str, Any]
    ) -> None:
        try:
            writer.write(encode_message(msg))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, RuntimeError):
            pass  # client went away; the drain ledger still balances

    # -- introspection -------------------------------------------------
    def _uptime(self) -> float:
        if self._started_at is None:
            return 0.0
        return asyncio.get_running_loop().time() - self._started_at

    def _health(self) -> dict[str, Any]:
        tier = self.supervisor.snapshot()
        return {
            "status": "draining" if self._draining else "ok",
            "protocol": PROTOCOL_VERSION,
            "uptime_s": round(self._uptime(), 3),
            "in_flight": self._in_flight,
            "backend": "cluster",
            "backend_mode": "cluster",
            "workers": tier["slots"],
            "workers_alive": len(self.supervisor.live_slots()),
            "worker_restarts": tier["worker_restarts"],
            "cache": self.cache.snapshot(),
        }

    async def _stats_snapshot(self) -> dict[str, Any]:
        """Router counters + best-effort per-worker stats aggregation."""
        worker_stats: list[dict[str, Any] | None] = []
        occupancies: list[tuple[float, int]] = []
        for handle in self.supervisor.handles:
            if not handle.alive:
                worker_stats.append(None)
                continue
            try:
                client, generation = await self._acquire(handle.slot)
                try:
                    snap = await client.request(
                        {"op": "stats", "id": f"router-w{handle.slot}"},
                        timeout_s=5.0,
                    )
                finally:
                    self._release(handle.slot, generation, client)
            except (OSError, RuntimeError, ServiceConnectionError):
                worker_stats.append(None)
                continue
            worker_stats.append(snap)
            batches = snap.get("batches") or {}
            if batches.get("count"):
                occupancies.append(
                    (int(batches.get("total", 0)), int(batches["count"]))
                )
        total_batches = sum(count for _, count in occupancies)
        total_trials = sum(total for total, _ in occupancies)
        mean_occupancy = (
            total_trials / total_batches if total_batches else 0.0
        )
        return {
            "status": "draining" if self._draining else "ok",
            "protocol": PROTOCOL_VERSION,
            "uptime_s": round(self._uptime(), 3),
            "in_flight": self._in_flight,
            "counters": self.stats.counters.snapshot(),
            "latency_ms": self.stats.latency.summary(),
            "cache": self.cache.snapshot(),
            "tier": self.supervisor.snapshot(),
            "batches": {
                "count": total_batches,
                "total": total_trials,
                "mean_occupancy": round(mean_occupancy, 3),
            },
            "workers": worker_stats,
        }


async def serve_cluster(
    config: ClusterConfig | None = None, *, quiet: bool = False
) -> None:
    """Run a router + worker tier until SIGINT/SIGTERM, then drain."""
    import signal

    router = ClusterRouter(config)
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(sig, router.request_shutdown)
    runner = asyncio.create_task(router.run())
    await router.started.wait()
    if not quiet:
        cfg = router.config
        print(
            f"repro cluster listening on {cfg.host}:{router.port} "
            f"({cfg.workers} workers, cache {router.cache.root})",
            flush=True,
        )
    await runner
    if not quiet:
        counters = router.stats.counters
        cache = router.cache.snapshot()
        print(
            f"repro cluster drained: {counters['completed']} completed "
            f"({counters['cache_served']} from cache, "
            f"{counters['forward_retries']} forward retries), "
            f"cache hit rate {cache['cache_hit_rate']}",
            flush=True,
        )
