"""q-relation decomposition into permutations (Hall / König).

A q-relation — at most ``q`` messages per input and per output — forms
a bipartite multigraph of maximum degree ``q``.  By König's edge-coloring
theorem it decomposes into at most ``q`` partial matchings (perfect
matchings when the relation is exactly ``q``-regular).  Waksman-style
routing (Section 1.3.3) needs this: route a q-relation as ``q``
pipelined permutation batches, ``O(q L + log n)`` flit steps total.

The decomposition here peels maximum matchings (Hopcroft-Karp via
networkx) from the residual multigraph.  König guarantees ``q`` batches
exist; peeling *maximum* matchings reaches ``q`` on regular relations
(each peel is then a perfect matching) and at worst a small constant
more on irregular ones, which is all the Waksman pipeline needs.
Unmatched slots are padded with identity fixings so each batch is a
full permutation, Waksman-ready.
"""

from __future__ import annotations

import numpy as np

from ..network.graph import NetworkError
from .problems import RoutingInstance

__all__ = ["decompose_q_relation"]


def decompose_q_relation(inst: RoutingInstance) -> list[np.ndarray]:
    """Split ``inst`` into permutation batches covering every message.

    Returns a list of permutations of ``range(inst.n)``; the multiset of
    ``(i, perm[i])`` pairs over all batches, restricted to the matched
    demands, equals the instance's demand multiset.  Unmatched slots in
    a batch are identity-fixed (they carry no message; callers routing
    the batches may skip sources whose demand count is exhausted, but
    routing the identities is harmless — they are conflict-free).

    Raises if the instance is not a q-relation for any finite q (always
    true) — kept for symmetric API; the practical cap is ``q`` batches
    where ``q = max(per-input, per-output)``.
    """
    import networkx as nx

    n = inst.n
    remaining: dict[tuple[int, int], int] = {}
    for s, d in zip(inst.sources, inst.dests):
        remaining[(int(s), int(d))] = remaining.get((int(s), int(d)), 0) + 1

    batches: list[np.ndarray] = []
    q = max(inst.max_per_source(), inst.max_per_dest(), 1)
    guard = 0
    while remaining:
        guard += 1
        if guard > 2 * q + 4:
            raise NetworkError(
                "decomposition failed to empty the relation in 2q+4 "
                "batches (internal error)"
            )
        g = nx.Graph()
        g.add_nodes_from((("s", i) for i in range(n)))
        g.add_nodes_from((("d", i) for i in range(n)))
        for (s, d), _count in remaining.items():
            g.add_edge(("s", s), ("d", d))
        matching = nx.bipartite.hopcroft_karp_matching(
            g, top_nodes=[("s", i) for i in range(n)]
        )
        perm = np.arange(n, dtype=np.int64)
        used_dests = set()
        chosen: list[tuple[int, int]] = []
        for s in range(n):
            key = ("s", s)
            if key in matching:
                d = matching[key][1]
                chosen.append((s, d))
        # Identity-fix unmatched sources onto unused destinations.
        for s, d in chosen:
            perm[s] = d
            used_dests.add(d)
        free_dests = iter(sorted(set(range(n)) - used_dests))
        for s in range(n):
            if ("s", s) not in matching:
                perm[s] = next(free_dests)
        if not np.array_equal(np.sort(perm), np.arange(n)):
            raise NetworkError("internal error: batch is not a permutation")
        batches.append(perm)
        for s, d in chosen:
            remaining[(s, d)] -= 1
            if remaining[(s, d)] == 0:
                del remaining[(s, d)]
    return batches
