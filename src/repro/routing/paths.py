"""Paths, congestion, and dilation (Section 1.1).

The paper decouples *path selection* from *scheduling* and expresses every
bound in terms of two properties of the chosen path set:

* the **congestion** ``C`` — the maximum number of messages traversing any
  single edge, and
* the **dilation** ``D`` — the length of the longest path.

This module provides the :class:`Path` value type (a node walk with its
edge ids resolved against a :class:`~repro.network.graph.Network`) and the
measurement helpers used throughout the scheduler, the simulators, and the
experiment harness.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from ..network.graph import Network, NetworkError

__all__ = [
    "Path",
    "paths_from_node_walks",
    "congestion",
    "dilation",
    "edge_loads",
    "check_edge_simple",
    "PathSetStats",
    "path_set_stats",
]


@dataclass(frozen=True)
class Path:
    """A directed walk through a network, resolved to edge ids.

    Attributes
    ----------
    nodes:
        The visited node ids, source first.  A path with a single node has
        no edges (source == destination) and is permitted — such messages
        are delivered without entering the network.
    edges:
        The edge ids traversed, ``len(nodes) - 1`` of them.
    """

    nodes: tuple[int, ...]
    edges: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.nodes) == 0:
            raise NetworkError("a path must visit at least one node")
        if len(self.edges) != len(self.nodes) - 1:
            raise NetworkError(
                f"path with {len(self.nodes)} nodes must have "
                f"{len(self.nodes) - 1} edges, got {len(self.edges)}"
            )

    @property
    def source(self) -> int:
        return self.nodes[0]

    @property
    def destination(self) -> int:
        return self.nodes[-1]

    @property
    def length(self) -> int:
        """Number of edges traversed (the path's dilation contribution)."""
        return len(self.edges)

    def is_edge_simple(self) -> bool:
        """True iff no edge is traversed more than once (Section 1.3.1)."""
        return len(set(self.edges)) == len(self.edges)

    @classmethod
    def from_nodes(cls, net: Network, nodes: Sequence[int]) -> "Path":
        """Resolve a node walk against ``net``.

        Raises :class:`NetworkError` if any consecutive pair is not linked.
        """
        edges = []
        for u, v in zip(nodes[:-1], nodes[1:]):
            e = net.edge_between(u, v)
            if e is None:
                raise NetworkError(f"no edge from node {u} to node {v}")
            edges.append(e)
        return cls(tuple(int(v) for v in nodes), tuple(edges))

    @classmethod
    def from_edges(cls, net: Network, edges: Sequence[int]) -> "Path":
        """Build a path from consecutive edge ids, validating continuity."""
        if len(edges) == 0:
            raise NetworkError("from_edges needs at least one edge")
        nodes = [net.tail(edges[0])]
        for e in edges:
            if net.tail(e) != nodes[-1]:
                raise NetworkError(
                    f"edge {e} does not continue from node {nodes[-1]}"
                )
            nodes.append(net.head(e))
        return cls(tuple(nodes), tuple(int(e) for e in edges))


def paths_from_node_walks(
    net: Network, walks: Iterable[Sequence[int]]
) -> list[Path]:
    """Vector version of :meth:`Path.from_nodes`."""
    return [Path.from_nodes(net, walk) for walk in walks]


def edge_loads(paths: Iterable[Path], num_edges: int | None = None) -> np.ndarray:
    """Per-edge message counts.

    If ``num_edges`` is omitted the array is sized to the largest edge id
    seen plus one (empty path sets give a zero-length array).
    """
    counts: Counter[int] = Counter()
    for p in paths:
        counts.update(p.edges)
    if num_edges is None:
        num_edges = max(counts) + 1 if counts else 0
    loads = np.zeros(num_edges, dtype=np.int64)
    for e, c in counts.items():
        loads[e] = c
    return loads


def congestion(paths: Iterable[Path]) -> int:
    """The congestion ``C``: maximum number of messages over any edge."""
    loads = edge_loads(paths)
    return int(loads.max()) if loads.size else 0


def dilation(paths: Iterable[Path]) -> int:
    """The dilation ``D``: length of the longest path."""
    return max((p.length for p in paths), default=0)


def check_edge_simple(paths: Iterable[Path]) -> None:
    """Raise :class:`NetworkError` unless every path is edge-simple.

    The Theorem 2.1.6 schedule (like the O(C+D) store-and-forward result
    it builds on) requires edge-simple paths.
    """
    for i, p in enumerate(paths):
        if not p.is_edge_simple():
            raise NetworkError(f"path {i} traverses an edge twice")


@dataclass(frozen=True)
class PathSetStats:
    """Summary of a path set in the paper's parameters."""

    num_messages: int
    congestion: int
    dilation: int
    total_path_length: int

    @property
    def mean_path_length(self) -> float:
        if self.num_messages == 0:
            return 0.0
        return self.total_path_length / self.num_messages


def path_set_stats(paths: Sequence[Path]) -> PathSetStats:
    """Compute ``C``, ``D`` and size statistics for a path set."""
    return PathSetStats(
        num_messages=len(paths),
        congestion=congestion(paths),
        dilation=dilation(paths),
        total_path_length=sum(p.length for p in paths),
    )
