"""Routing-problem generators (Section 1.2).

The paper studies two canonical problems on the butterfly:

* the **q-relation**: at most ``q`` messages originate at each input and
  at most ``q`` messages are destined for each output (``q = 1`` is
  permutation routing), and
* the **random routing problem with q messages per input**: each of the
  ``q`` messages at each input picks a uniformly random output.

These generators are topology-agnostic: they produce ``(source, dest)``
index pairs over ``n`` inputs / outputs, which the topology modules then
turn into paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "RoutingInstance",
    "random_permutation",
    "random_q_relation",
    "random_destinations",
    "transpose_permutation",
    "bit_reversal_permutation",
    "is_q_relation",
]


@dataclass(frozen=True)
class RoutingInstance:
    """A set of (source, destination) demands over ``n`` endpoints.

    ``sources[i]`` and ``dests[i]`` give message ``i``'s input and output
    index in ``[0, n)``.
    """

    n: int
    sources: np.ndarray
    dests: np.ndarray

    def __post_init__(self) -> None:
        if self.sources.shape != self.dests.shape or self.sources.ndim != 1:
            raise ValueError("sources and dests must be equal-length 1-d arrays")
        for name, arr in (("sources", self.sources), ("dests", self.dests)):
            if arr.size and (arr.min() < 0 or arr.max() >= self.n):
                raise ValueError(f"{name} contains indices outside [0, {self.n})")

    @property
    def num_messages(self) -> int:
        return int(self.sources.size)

    def max_per_source(self) -> int:
        """Largest number of messages originating at one input."""
        if self.num_messages == 0:
            return 0
        return int(np.bincount(self.sources, minlength=self.n).max())

    def max_per_dest(self) -> int:
        """Largest number of messages destined for one output."""
        if self.num_messages == 0:
            return 0
        return int(np.bincount(self.dests, minlength=self.n).max())


def is_q_relation(inst: RoutingInstance, q: int) -> bool:
    """True iff ``inst`` is a q-relation (Section 1.2)."""
    return inst.max_per_source() <= q and inst.max_per_dest() <= q


def random_permutation(n: int, rng: np.random.Generator) -> RoutingInstance:
    """A uniformly random permutation routing problem (``q = 1``)."""
    return RoutingInstance(
        n=n,
        sources=np.arange(n, dtype=np.int64),
        dests=rng.permutation(n).astype(np.int64),
    )


def random_q_relation(n: int, q: int, rng: np.random.Generator) -> RoutingInstance:
    """A uniformly-structured random q-relation.

    Built as ``q`` independent random permutations stacked together, which
    gives *exactly* ``q`` messages per input and per output — the extremal
    q-relation the Section 3.1 bound is stated for.
    """
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    sources = np.tile(np.arange(n, dtype=np.int64), q)
    dests = np.concatenate([rng.permutation(n).astype(np.int64) for _ in range(q)])
    return RoutingInstance(n=n, sources=sources, dests=dests)


def random_destinations(n: int, q: int, rng: np.random.Generator) -> RoutingInstance:
    """The random routing problem with ``q`` messages per input.

    Every message independently picks a uniformly random output; outputs
    may receive far more than ``q`` messages (balls-in-bins), which is
    precisely the regime of the Section 3.2 lower bound.
    """
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    sources = np.repeat(np.arange(n, dtype=np.int64), q)
    dests = rng.integers(0, n, size=n * q).astype(np.int64)
    return RoutingInstance(n=n, sources=sources, dests=dests)


def transpose_permutation(n: int) -> RoutingInstance:
    """The transpose permutation on ``n = m**2`` endpoints.

    Sends ``(row, col)`` to ``(col, row)``; a classic adversarial
    permutation for oblivious routers.
    """
    m = int(round(n**0.5))
    if m * m != n:
        raise ValueError(f"transpose needs a square n, got {n}")
    idx = np.arange(n, dtype=np.int64)
    rows, cols = divmod(idx, m)
    return RoutingInstance(n=n, sources=idx, dests=cols * m + rows)


def bit_reversal_permutation(n: int) -> RoutingInstance:
    """The bit-reversal permutation on a power-of-two ``n``.

    Worst-case for dimension-ordered meshes and a standard stress
    permutation for butterflies.
    """
    if n < 2 or n & (n - 1):
        raise ValueError(f"bit reversal needs a power-of-two n, got {n}")
    bits = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    rev = np.zeros_like(idx)
    for j in range(bits):
        rev |= ((idx >> j) & 1) << (bits - 1 - j)
    return RoutingInstance(n=n, sources=idx, dests=rev)
