"""Valiant's random-intermediate-destination trick [47].

Leighton's butterfly algorithms (Problems 3.285/3.286 of [25]) and the
paper's own Section 3.1 algorithm route in two phases: first to a random
intermediate node, then to the true destination.  This converts any fixed
problem into two random problems, destroying adversarial structure.  The
generic version here works on arbitrary networks via shortest paths; the
butterfly-specific version lives in :mod:`repro.core.butterfly_routing`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..network.graph import Network
from .paths import Path
from .shortest import bfs_path

__all__ = ["valiant_path", "valiant_paths"]


def valiant_path(
    net: Network,
    source: int,
    dest: int,
    rng: np.random.Generator,
    intermediates: Sequence[int] | None = None,
) -> Path:
    """Route ``source -> random intermediate -> dest`` via shortest paths.

    ``intermediates`` restricts the random choice (e.g. to one level of a
    leveled network); by default any node may be chosen.  The two legs are
    concatenated; the result need not be edge-simple in pathological
    topologies, so callers that require edge-simplicity should check.
    """
    pool = intermediates if intermediates is not None else range(net.num_nodes)
    mid = int(pool[int(rng.integers(len(pool)))])
    leg1 = bfs_path(net, source, mid, rng)
    leg2 = bfs_path(net, mid, dest, rng)
    return Path(leg1.nodes + leg2.nodes[1:], leg1.edges + leg2.edges)


def valiant_paths(
    net: Network,
    demands: Sequence[tuple[int, int]],
    rng: np.random.Generator,
    intermediates: Sequence[int] | None = None,
) -> list[Path]:
    """:func:`valiant_path` for every ``(source, dest)`` demand."""
    return [valiant_path(net, s, d, rng, intermediates) for s, d in demands]
