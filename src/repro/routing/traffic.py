"""Synthetic traffic patterns for mesh/torus experiments.

The interconnect literature the paper sits in (Dally [15, 16] et al.)
evaluates routers under a standard battery of spatial patterns; these
generators produce ``(source, destination)`` node-id demands for a
:class:`~repro.network.mesh.KAryNCube`:

* **uniform** — destinations uniform at random;
* **hotspot** — a fraction of traffic targets one node, the rest
  uniform (models a shared resource);
* **tornado** — each node sends half-way around its row (adversarial
  for tori: all traffic turns the same way);
* **neighbor** — each node sends to its +1 neighbor in dimension 0
  (best case);
* **bit_complement** — node with coordinates ``c`` sends to
  ``k - 1 - c`` per dimension (worst-case distance).
"""

from __future__ import annotations

import numpy as np

from ..network.graph import NetworkError
from ..network.mesh import KAryNCube

__all__ = [
    "uniform_traffic",
    "hotspot_traffic",
    "tornado_traffic",
    "neighbor_traffic",
    "bit_complement_traffic",
]


def uniform_traffic(
    cube: KAryNCube, messages_per_node: int, rng: np.random.Generator
) -> list[tuple[int, int]]:
    """Every node sends ``messages_per_node`` to uniform destinations."""
    if messages_per_node < 1:
        raise NetworkError("messages_per_node must be >= 1")
    N = cube.num_nodes
    return [
        (s, int(rng.integers(N)))
        for s in range(N)
        for _ in range(messages_per_node)
    ]


def hotspot_traffic(
    cube: KAryNCube,
    messages_per_node: int,
    hotspot: int,
    fraction: float,
    rng: np.random.Generator,
) -> list[tuple[int, int]]:
    """Uniform traffic with a ``fraction`` redirected to ``hotspot``."""
    if not 0.0 <= fraction <= 1.0:
        raise NetworkError("fraction must be in [0, 1]")
    if not 0 <= hotspot < cube.num_nodes:
        raise NetworkError("hotspot node out of range")
    demands = uniform_traffic(cube, messages_per_node, rng)
    out = []
    for s, d in demands:
        out.append((s, hotspot if rng.random() < fraction else d))
    return out


def tornado_traffic(cube: KAryNCube) -> list[tuple[int, int]]:
    """Each node sends ``floor(k/2)`` hops forward in dimension 0."""
    half = cube.k // 2
    demands = []
    for v in range(cube.num_nodes):
        coords = list(cube.coords(v))
        coords[0] = (coords[0] + half) % cube.k
        demands.append((v, cube.node(tuple(coords))))
    return demands


def neighbor_traffic(cube: KAryNCube) -> list[tuple[int, int]]:
    """Each node sends one hop forward in dimension 0 (wrapping)."""
    demands = []
    for v in range(cube.num_nodes):
        coords = list(cube.coords(v))
        coords[0] = (coords[0] + 1) % cube.k
        demands.append((v, cube.node(tuple(coords))))
    return demands


def bit_complement_traffic(cube: KAryNCube) -> list[tuple[int, int]]:
    """Each node sends to its coordinate-wise complement."""
    demands = []
    for v in range(cube.num_nodes):
        coords = tuple(cube.k - 1 - c for c in cube.coords(v))
        demands.append((v, cube.node(coords)))
    return demands
