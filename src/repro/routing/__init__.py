"""Path substrate: routes, routing problems, and path selection."""

from .decompose import decompose_q_relation
from .paths import (
    Path,
    PathSetStats,
    check_edge_simple,
    congestion,
    dilation,
    edge_loads,
    path_set_stats,
    paths_from_node_walks,
)
from .problems import (
    RoutingInstance,
    bit_reversal_permutation,
    is_q_relation,
    random_destinations,
    random_permutation,
    random_q_relation,
    transpose_permutation,
)
from .select import SelectionResult, min_penalty_path, select_paths
from .traffic import (
    bit_complement_traffic,
    hotspot_traffic,
    neighbor_traffic,
    tornado_traffic,
    uniform_traffic,
)
from .shortest import bfs_path, bfs_tree, shortest_paths
from .valiant import valiant_path, valiant_paths

__all__ = [
    "Path",
    "PathSetStats",
    "RoutingInstance",
    "SelectionResult",
    "bfs_path",
    "bfs_tree",
    "bit_complement_traffic",
    "bit_reversal_permutation",
    "check_edge_simple",
    "congestion",
    "decompose_q_relation",
    "dilation",
    "edge_loads",
    "hotspot_traffic",
    "is_q_relation",
    "min_penalty_path",
    "neighbor_traffic",
    "path_set_stats",
    "paths_from_node_walks",
    "random_destinations",
    "random_permutation",
    "random_q_relation",
    "select_paths",
    "shortest_paths",
    "tornado_traffic",
    "transpose_permutation",
    "uniform_traffic",
    "valiant_path",
    "valiant_paths",
]
