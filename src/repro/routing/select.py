"""Congestion-aware path selection (Srinivasan-Teo flavored).

Srinivasan and Teo [46] showed how to pick paths minimizing ``C + D`` to
within constant factors (the exact minimum is NP-hard).  We implement the
practical workhorse with the same goal: iterative rerouting under
exponential edge penalties.  Each message is (re)routed along a
minimum-penalty path where an edge's penalty grows exponentially with its
current load; repeated sweeps converge to a locally optimal ``C + D``.
This is the standard multiplicative-weights heuristic behind
constant-factor congestion-minimization schemes.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..network.graph import Network, NetworkError
from .paths import Path, congestion, dilation

__all__ = ["select_paths", "SelectionResult", "min_penalty_path"]


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of congestion-aware selection."""

    paths: list[Path]
    congestion: int
    dilation: int
    sweeps: int


def min_penalty_path(
    net: Network,
    source: int,
    dest: int,
    loads: np.ndarray,
    beta: float,
) -> Path:
    """Minimum-penalty path under edge cost ``beta ** load + 1``.

    The ``+ 1`` keeps a hop cost even on empty edges so the selection
    never trades a bounded congestion gain for an unbounded detour.
    Dijkstra over non-negative penalties.
    """
    if source == dest:
        return Path((source,), ())
    dist = np.full(net.num_nodes, np.inf)
    parent_edge = np.full(net.num_nodes, -1, dtype=np.int64)
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        if u == dest:
            break
        for e in net.out_edges(u):
            v = net.head(e)
            nd = d + float(beta ** loads[e]) + 1.0
            if nd < dist[v]:
                dist[v] = nd
                parent_edge[v] = e
                heapq.heappush(heap, (nd, v))
    if not np.isfinite(dist[dest]):
        raise NetworkError(f"node {dest} unreachable from {source}")
    edges: list[int] = []
    cur = dest
    while cur != source:
        e = int(parent_edge[cur])
        edges.append(e)
        cur = net.tail(e)
    return Path.from_edges(net, list(reversed(edges)))


def select_paths(
    net: Network,
    demands: Sequence[tuple[int, int]],
    max_sweeps: int = 8,
    beta: float = 2.0,
    rng: np.random.Generator | None = None,
) -> SelectionResult:
    """Pick paths for ``demands`` approximately minimizing ``C + D``.

    Starts from min-penalty routes inserted one by one (in random order if
    ``rng`` is given), then performs reroute sweeps: each message is pulled
    out, penalties recomputed, and the message rerouted; a sweep with no
    improvement in ``C + D`` stops the search.

    Parameters
    ----------
    max_sweeps:
        Upper bound on reroute sweeps after the initial insertion.
    beta:
        Penalty base; larger values weigh congestion more against detours.
    """
    order = np.arange(len(demands))
    if rng is not None:
        rng.shuffle(order)
    loads = np.zeros(net.num_edges, dtype=np.int64)
    paths: list[Path | None] = [None] * len(demands)
    for i in order:
        s, d = demands[i]
        p = min_penalty_path(net, s, d, loads, beta)
        paths[i] = p
        for e in p.edges:
            loads[e] += 1

    def objective(ps: Sequence[Path]) -> int:
        return congestion(ps) + dilation(ps)

    best = objective([p for p in paths if p is not None])
    sweeps = 0
    for _ in range(max_sweeps):
        sweeps += 1
        improved = False
        for i in order:
            old = paths[i]
            assert old is not None
            for e in old.edges:
                loads[e] -= 1
            new = min_penalty_path(net, demands[i][0], demands[i][1], loads, beta)
            for e in new.edges:
                loads[e] += 1
            paths[i] = new
        cur = objective([p for p in paths if p is not None])
        if cur < best:
            best = cur
            improved = True
        if not improved:
            break
    final = [p for p in paths if p is not None]
    return SelectionResult(
        paths=final,
        congestion=congestion(final),
        dilation=dilation(final),
        sweeps=sweeps,
    )
