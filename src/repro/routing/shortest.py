"""Shortest-path selection.

BFS-based path selection over arbitrary :class:`~repro.network.graph.Network`
instances.  Shortest paths are *shortcut free* in the sense of Meyer auf
der Heide and Vocking [35], which several of the scheduling results cited
by the paper assume; they also minimize each message's individual dilation
contribution.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..network.graph import Network, NetworkError
from .paths import Path

__all__ = ["bfs_path", "bfs_tree", "shortest_paths"]


def bfs_tree(net: Network, source: int) -> np.ndarray:
    """Parent-edge array of a BFS tree rooted at ``source``.

    ``parent_edge[v]`` is the edge id by which BFS first reached ``v``
    (-1 for the source and for unreachable nodes).
    """
    parent_edge = np.full(net.num_nodes, -1, dtype=np.int64)
    seen = np.zeros(net.num_nodes, dtype=bool)
    seen[source] = True
    frontier = [source]
    while frontier:
        nxt: list[int] = []
        for u in frontier:
            for e in net.out_edges(u):
                v = net.head(e)
                if not seen[v]:
                    seen[v] = True
                    parent_edge[v] = e
                    nxt.append(v)
        frontier = nxt
    return parent_edge


def bfs_path(
    net: Network,
    source: int,
    dest: int,
    rng: np.random.Generator | None = None,
) -> Path:
    """One shortest path from ``source`` to ``dest``.

    With ``rng`` given, ties between equally short parents are broken
    uniformly at random (by shuffling each node's out-edge scan order),
    which spreads congestion across the shortest-path DAG; without it the
    first-found path is returned deterministically.
    """
    if source == dest:
        return Path((source,), ())
    dist = net.bfs_distances(source)
    if dist[dest] < 0:
        raise NetworkError(f"node {dest} unreachable from {source}")
    # Walk backwards from dest choosing predecessors on shortest paths.
    nodes = [dest]
    edges: list[int] = []
    cur = dest
    while cur != source:
        candidates = [
            e for e in net.in_edges(cur) if dist[net.tail(e)] == dist[cur] - 1
        ]
        e = candidates[int(rng.integers(len(candidates)))] if rng is not None else candidates[0]
        edges.append(e)
        cur = net.tail(e)
        nodes.append(cur)
    return Path(tuple(reversed(nodes)), tuple(reversed(edges)))


def shortest_paths(
    net: Network,
    demands: Sequence[tuple[int, int]],
    rng: np.random.Generator | None = None,
) -> list[Path]:
    """Shortest paths for a list of ``(source, dest)`` node-id demands."""
    return [bfs_path(net, s, d, rng) for s, d in demands]
