"""Adaptive wormhole routing on multibutterflies ([3], Section 1.3.4).

Arora, Leighton and Maggs route ``n`` ``L``-flit messages from the
inputs to the outputs of an ``n``-input multibutterfly in
``O(L + log n)`` flit steps, online: the ``d``-fold path diversity at
every level means a blocked header simply takes one of the other
correct-direction edges.

The router here is the direct wormhole realization of that idea: heads
extend level by level, choosing uniformly among the destination-correct
edges with a free virtual channel; if all ``d`` are full the worm
stalls (and retries — the network is leveled, so no deadlock is
possible).  Worm mechanics (lock-step motion, strict buffer release,
``B`` slots per edge) match :class:`~repro.sim.wormhole
.WormholeSimulator` exactly.
"""

from __future__ import annotations

import numpy as np

from ..network.graph import NetworkError
from ..network.multibutterfly import Multibutterfly
from ..routing.problems import RoutingInstance
from ..sim.stats import SimulationResult

__all__ = ["MultibutterflyRouter"]


class MultibutterflyRouter:
    """Online adaptive wormhole router for a multibutterfly."""

    def __init__(
        self,
        mbf: Multibutterfly,
        num_virtual_channels: int = 1,
        seed: int | None = 0,
    ) -> None:
        if num_virtual_channels < 1:
            raise NetworkError("need at least one virtual channel")
        self.mbf = mbf
        self.net = mbf.network
        self.B = int(num_virtual_channels)
        self._rng = np.random.default_rng(seed)

    def run(
        self,
        instance: RoutingInstance,
        message_length: int,
        release_times: np.ndarray | None = None,
        max_steps: int | None = None,
    ) -> SimulationResult:
        """Route input->output demands; returns flit-step times."""
        if instance.n != self.mbf.n:
            raise NetworkError(
                f"instance over {instance.n} endpoints, network has {self.mbf.n}"
            )
        L = int(message_length)
        if L < 1:
            raise NetworkError("message length L must be >= 1")
        M = instance.num_messages
        release = (
            np.zeros(M, dtype=np.int64)
            if release_times is None
            else np.asarray(release_times, dtype=np.int64)
        )
        completion = np.full(M, -1, dtype=np.int64)
        blocked = np.zeros(M, dtype=np.int64)
        if M == 0:
            return SimulationResult(completion, -1, 0, blocked)

        D = self.mbf.log_n  # every input-to-output route has log n hops
        if max_steps is None:
            max_steps = int(release.max() + (L + D + 2) * M + 10)

        position = instance.sources.astype(np.int64).copy()  # node ids at lvl 0
        dest_col = instance.dests.astype(np.int64)
        taken: list[list[int]] = [[] for _ in range(M)]
        k = np.zeros(M, dtype=np.int64)
        occupancy = np.zeros(self.net.num_edges, dtype=np.int64)
        done = np.zeros(M, dtype=bool)
        pending = M

        t = 0
        while pending and t < max_steps:
            t += 1
            active = np.flatnonzero(~done & (release < t))
            if active.size == 0:
                t = int(release[~done].min())
                continue
            movers: list[int] = []
            order = active[np.argsort(self._rng.random(active.size))]
            for m in order:
                if k[m] < D:  # head still extending
                    options = self.mbf.candidate_edges(
                        int(position[m]), int(dest_col[m])
                    )
                    free = [e for e in options if occupancy[e] < self.B]
                    if not free:
                        blocked[m] += 1
                        continue
                    e = free[int(self._rng.integers(len(free)))]
                    occupancy[e] += 1
                    taken[m].append(int(e))
                    position[m] = self.net.head(e)
                    movers.append(int(m))
                else:
                    movers.append(int(m))

            for m in movers:
                k[m] += 1
                rel = int(k[m]) - L - 1
                if 0 <= rel < D - 1:
                    occupancy[taken[m][rel]] -= 1
                if k[m] == L + D - 1:
                    occupancy[taken[m][D - 1]] -= 1
                    completion[m] = t
                    done[m] = True
                    pending -= 1

            # A leveled network cannot deadlock; if nothing moved, some
            # release lies in the future (handled by the skip above) or
            # every active head lost arbitration transiently.

        return SimulationResult(
            completion_times=completion,
            makespan=int(completion.max()),
            steps_executed=t,
            blocked_steps=blocked,
            hit_step_cap=pending > 0,
        )
