"""Color refinement (Lemma 2.1.5) made constructive.

The Theorem 2.1.6 schedule colors the messages so that at most ``B``
messages of any color cross any edge (*multiplex size* ``B``, Definition
2.1.4), then releases one color class every ``L + D - 1`` flit steps.
The coloring is built by repeated refinement: each stage splits every
color class into ``r`` new classes uniformly at random, and the Lovász
local lemma shows a split exists in which no (color, edge) pair exceeds
the stage's target multiplex size ``mf``:

* **Case 1** (``log D >= ms > B``): ``mf = B``,
  ``r = 3e (D ms)^(1/B) ms / B``;
* **Case 2** (``D >= ms > log D``): ``mf = log D``,
  ``r = 32 e ms / log D``;
* **Case 3** (``ms > D``): ``mf = max(D, 15 ln^3 ms)``,
  ``r = ms / ((1 - 1/ln ms) mf)``.

The paper's proof is nonconstructive (it cites [29, 30] for a
constructive variant).  We realize each stage with **Moser-Tardos
resampling**, the modern constructive LLL over exactly the same
probability space: draw the split, and while some bad event (a
(color, edge) pair with more than ``mf`` messages) holds, redraw the
colors of the messages in a violated event.  Every returned coloring is
*verified* — :func:`multiplex_size` is recomputed from scratch — so
correctness never depends on the resampler's convergence argument.

Because the paper's stage parameters carry large constants (3e, 32e,
``15 ln^3 ms``) that swamp simulator-scale instances, each refinement
stage also supports an ``adaptive`` mode: start from the
information-theoretic minimum ``r = ceil(ms / mf)`` and double it until
resampling converges within a budget.  Theory mode reproduces the paper's
construction; adaptive mode gives the small schedules the experiments
plot.  Both modes satisfy the invariant the theorem needs — multiplex
size at most ``mf`` after the stage.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..network.graph import NetworkError
from ..routing.paths import Path

__all__ = [
    "MessageEdgeIncidence",
    "multiplex_size",
    "lemma_2_1_5_parameters",
    "refine_colors",
    "reduce_multiplex_size",
    "merge_color_classes",
    "RefinementStage",
    "RefinementTrace",
]

_E = math.e


@dataclass(frozen=True)
class MessageEdgeIncidence:
    """Flattened (message, edge) incidence of a path set.

    ``message_ids[i]`` uses ``edge_ids[i]``; built once and reused by
    every refinement stage and verification pass.
    """

    message_ids: np.ndarray
    edge_ids: np.ndarray
    num_messages: int
    num_edges: int

    @classmethod
    def from_paths(
        cls, paths: Sequence[Path] | Sequence[Sequence[int]]
    ) -> "MessageEdgeIncidence":
        msg_ids: list[np.ndarray] = []
        edge_ids: list[np.ndarray] = []
        max_edge = -1
        for m, p in enumerate(paths):
            edges = np.asarray(
                p.edges if isinstance(p, Path) else list(p), dtype=np.int64
            )
            if edges.size == 0:
                continue
            if np.unique(edges).size != edges.size:
                raise NetworkError(f"path {m} is not edge-simple")
            msg_ids.append(np.full(edges.size, m, dtype=np.int64))
            edge_ids.append(edges)
            max_edge = max(max_edge, int(edges.max()))
        if msg_ids:
            mi = np.concatenate(msg_ids)
            ei = np.concatenate(edge_ids)
        else:
            mi = np.empty(0, dtype=np.int64)
            ei = np.empty(0, dtype=np.int64)
        return cls(
            message_ids=mi,
            edge_ids=ei,
            num_messages=len(paths),
            num_edges=max_edge + 1,
        )


def multiplex_size(inc: MessageEdgeIncidence, colors: np.ndarray) -> int:
    """Definition 2.1.4: max over (edge, color) of messages crossing.

    With all messages one color this is the congestion ``C``.
    """
    if inc.message_ids.size == 0:
        return 0
    colors = np.asarray(colors, dtype=np.int64)
    num_colors = int(colors.max()) + 1 if colors.size else 1
    keys = inc.edge_ids * num_colors + colors[inc.message_ids]
    _, counts = np.unique(keys, return_counts=True)
    return int(counts.max())


def lemma_2_1_5_parameters(ms: int, D: int, B: int) -> tuple[int, int, int]:
    """The applicable case of Lemma 2.1.5 for multiplex size ``ms``.

    Returns ``(case, mf, r)`` with the paper's exact formulas (``r``
    rounded up).  Requires ``ms > B``.
    """
    if ms <= B:
        raise ValueError(f"multiplex size {ms} already <= B = {B}; nothing to refine")
    log_d = math.log2(max(D, 2))
    if ms <= log_d:
        mf = B
        r = 3 * _E * ((D * ms) ** (1.0 / B)) * ms / B
        case = 1
    elif ms <= D:
        mf = max(int(math.floor(log_d)), B)
        r = 32 * _E * ms / log_d
        case = 2
    else:
        ln_ms = math.log(ms)
        mf = max(D, int(math.ceil(15 * ln_ms**3)))
        mf = min(mf, ms - 1)  # keep the stage a strict refinement
        r = ms / ((1.0 - 1.0 / ln_ms) * mf)
        case = 3
    return case, int(mf), max(2, int(math.ceil(r)))


def refine_colors(
    inc: MessageEdgeIncidence,
    colors: np.ndarray,
    r: int,
    mf: int,
    rng: np.random.Generator,
    max_rounds: int = 10_000,
) -> np.ndarray | None:
    """One refinement stage: split each class into ``r``; resample to ``mf``.

    Moser-Tardos over the product space of per-message subcolor choices:
    messages start with uniform subcolors in ``[0, r)``; while some
    (new color, edge) pair carries more than ``mf`` messages, every
    message of a violated pair redraws its subcolor.  Returns the new
    color array (``new = old * r + sub``) or ``None`` if the budget of
    ``max_rounds`` resampling rounds is exhausted (callers then retry
    with a larger ``r``).
    """
    if r < 1 or mf < 1:
        raise ValueError("need r >= 1 and mf >= 1")
    colors = np.asarray(colors, dtype=np.int64)
    M = inc.num_messages
    sub = rng.integers(0, r, size=M)
    if inc.message_ids.size == 0:
        return colors * r + sub
    parent = colors[inc.message_ids]
    edge = inc.edge_ids
    for _ in range(max_rounds):
        new_color = parent * r + sub[inc.message_ids]
        # Key each incidence by (edge, new color); count occupancy.
        keys = edge * np.int64(r) * np.int64(colors.max() + 1) + new_color
        uniq, inverse, counts = np.unique(
            keys, return_inverse=True, return_counts=True
        )
        violated = counts[inverse] > mf
        if not violated.any():
            return colors * r + sub
        bad_messages = np.unique(inc.message_ids[violated])
        sub[bad_messages] = rng.integers(0, r, size=bad_messages.size)
    return None


@dataclass(frozen=True)
class RefinementStage:
    """Record of one executed refinement stage."""

    case: int
    ms_before: int
    mf_target: int
    r: int
    ms_after: int
    resample_doublings: int


@dataclass(frozen=True)
class RefinementTrace:
    """Full history of a :func:`reduce_multiplex_size` run."""

    stages: tuple[RefinementStage, ...]
    colors: np.ndarray
    num_color_classes: int

    @property
    def final_multiplex(self) -> int:
        return self.stages[-1].ms_after if self.stages else -1


def reduce_multiplex_size(
    paths: Sequence[Path] | Sequence[Sequence[int]],
    B: int,
    D: int | None = None,
    rng: np.random.Generator | None = None,
    mode: str = "adaptive",
    max_rounds_per_stage: int = 800,
    merge: bool = True,
) -> RefinementTrace:
    """Reduce multiplex size from ``C`` to ``<= B`` (Theorem 2.1.6's engine).

    Applies the Lemma 2.1.5 case cascade: case 3 while ``ms > D``, case 2
    while ``ms > log D``, case 1 down to ``B``.

    Parameters
    ----------
    paths:
        The message routes (edge-simple).
    B:
        Virtual channels per edge — the final multiplex target.
    D:
        Dilation; computed from ``paths`` when omitted.
    mode:
        ``"theory"`` uses the paper's ``r`` at every stage (verbatim
        construction, large color counts); ``"adaptive"`` starts each
        stage at ``r = ceil(ms / mf)`` and doubles until the resampler
        converges (small color counts, same invariant); ``"direct"``
        skips the cascade entirely and refines from ``C`` straight to
        ``B`` in one adaptive stage — the tightest schedules in practice,
        used for the measured curves in the experiments.
    merge:
        Apply :func:`merge_color_classes` to the final coloring (packs
        underfilled classes; never increases the class count or the
        multiplex size).
    """
    if B < 1:
        raise ValueError("B must be >= 1")
    if mode not in ("theory", "adaptive", "direct"):
        raise ValueError("mode must be 'theory', 'adaptive' or 'direct'")
    if rng is None:
        rng = np.random.default_rng(0)
    inc = MessageEdgeIncidence.from_paths(paths)
    if D is None:
        lengths = np.bincount(inc.message_ids, minlength=inc.num_messages)
        D = int(lengths.max()) if lengths.size else 0
    colors = np.zeros(inc.num_messages, dtype=np.int64)
    stages: list[RefinementStage] = []
    ms = multiplex_size(inc, colors)
    max_stages = ms + 8  # every stage strictly reduces the multiplex size
    guard = 0
    while ms > B:
        guard += 1
        if guard > max_stages:
            raise RuntimeError(f"refinement failed to converge in {max_stages} stages")
        if mode == "direct":
            case, mf, r_theory = 1, B, 0
        else:
            case, mf, r_theory = lemma_2_1_5_parameters(ms, max(D, 1), B)
        if mode == "adaptive" and case == 3 and mf >= ms:
            # The paper's 15 ln^3(ms) floor exceeds ms itself at simulator
            # scales; halving preserves the cascade's geometric progress.
            mf = max(B, ms // 2)
        mf = min(mf, ms - 1)
        mf = max(mf, B)
        r = r_theory if mode == "theory" else max(2, math.ceil(1.5 * ms / mf))
        doublings = 0
        while True:
            new = refine_colors(inc, colors, r, mf, rng, max_rounds_per_stage)
            if new is not None:
                break
            r = max(r + 1, math.ceil(r * 1.5))
            doublings += 1
            if doublings > 48:
                raise RuntimeError(
                    f"stage (case {case}) failed to converge even at r={r}"
                )
        ms_before = ms
        colors = _compact(new)
        ms = multiplex_size(inc, colors)
        stages.append(
            RefinementStage(
                case=case,
                ms_before=ms_before,
                mf_target=mf,
                r=r,
                ms_after=ms,
                resample_doublings=doublings,
            )
        )
    if merge:
        colors = merge_color_classes(inc, colors, B)
    return RefinementTrace(
        stages=tuple(stages),
        colors=colors,
        num_color_classes=int(colors.max()) + 1 if colors.size else 0,
    )


def _compact(colors: np.ndarray) -> np.ndarray:
    """Renumber colors to a dense ``0..K-1`` range."""
    _, compacted = np.unique(colors, return_inverse=True)
    return compacted.astype(np.int64)


def merge_color_classes(
    inc: MessageEdgeIncidence, colors: np.ndarray, B: int
) -> np.ndarray:
    """Greedily merge color classes while multiplex size stays ``<= B``.

    The refinement stages guarantee multiplex size ``<= B`` but their
    randomized splits leave classes far from full, especially at
    simulator scales where the stage ``r`` overshoots.  First-fit
    merging packs them: class ``c`` joins the first merged bucket whose
    per-edge loads, added to ``c``'s, never exceed ``B``.  The result
    still has multiplex size ``<= B`` (checked by construction), so the
    Theorem 2.1.6 release schedule built from it remains valid, only
    shorter.
    """
    colors = _compact(np.asarray(colors, dtype=np.int64))
    K = int(colors.max()) + 1 if colors.size else 0
    if K <= 1 or inc.message_ids.size == 0:
        return colors
    E = inc.num_edges
    # Per-class edge-load vectors.
    class_loads = np.zeros((K, E), dtype=np.int64)
    np.add.at(class_loads, (colors[inc.message_ids], inc.edge_ids), 1)
    bucket_loads: list[np.ndarray] = []
    assignment = np.empty(K, dtype=np.int64)
    # Pack the heaviest classes first (fewer, better-filled buckets).
    order = np.argsort(-class_loads.max(axis=1), kind="stable")
    for c in order:
        placed = False
        for b, loads in enumerate(bucket_loads):
            if int((loads + class_loads[c]).max()) <= B:
                loads += class_loads[c]
                assignment[c] = b
                placed = True
                break
        if not placed:
            assignment[c] = len(bucket_loads)
            bucket_loads.append(class_loads[c].copy())
    return _compact(assignment[colors])
