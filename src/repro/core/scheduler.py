"""Offline wormhole schedulers (Theorem 2.1.6 and the footnote-5 baseline).

:func:`lll_schedule` is the paper's construction: reduce the multiplex
size from ``C`` to ``B`` with the Lemma 2.1.5 cascade, then release one
color class every ``L + D - 1`` flit steps.  Its length is
``O((L + D) C (D log D)^(1/B) / B)`` flit steps.

:func:`naive_coloring_schedule` is the baseline of footnote 5: build the
conflict graph (worms adjacent iff their paths share an edge), greedily
color it with at most ``D(C - 1) + 1`` colors, and route one color class
at a time — ``O((L + D) C D)`` flit steps, the bound the paper's
construction beats by a factor of about ``B D^(1 - 1/B)``.

Both produce :class:`~repro.core.schedule.ColorClassSchedule` objects that
:func:`~repro.core.schedule.execute_schedule` validates on the flit-level
simulator.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..routing.paths import Path, congestion, dilation
from .coloring import (
    MessageEdgeIncidence,
    RefinementTrace,
    multiplex_size,
    reduce_multiplex_size,
)
from .schedule import ColorClassSchedule

__all__ = ["ScheduleBuild", "lll_schedule", "naive_coloring_schedule", "greedy_conflict_coloring"]


@dataclass(frozen=True)
class ScheduleBuild:
    """A constructed schedule plus its provenance."""

    schedule: ColorClassSchedule
    congestion: int
    dilation: int
    num_classes: int
    trace: RefinementTrace | None = None

    @property
    def length_bound(self) -> int:
        return self.schedule.length_bound


def lll_schedule(
    paths: Sequence[Path] | Sequence[Sequence[int]],
    message_length: int,
    B: int,
    rng: np.random.Generator | None = None,
    mode: str = "adaptive",
) -> ScheduleBuild:
    """Theorem 2.1.6: an ``O((L+D) C (D log D)^(1/B) / B)``-step schedule.

    When ``C <= B`` no refinement is needed — all messages are released
    simultaneously and finish in ``L + D - 1`` steps (the theorem's
    trivial case).

    Parameters
    ----------
    paths:
        Edge-simple routes.
    message_length:
        The ``L`` in flits.
    B:
        Virtual channels per edge.
    mode:
        ``"theory"`` for the paper's stage parameters, ``"adaptive"`` for
        practically-small color counts, ``"direct"`` for one-stage
        refinement straight to ``B`` (see :mod:`repro.core.coloring`).
    """
    inc = MessageEdgeIncidence.from_paths(paths)
    C = multiplex_size(inc, np.zeros(inc.num_messages, dtype=np.int64))
    lengths = np.bincount(inc.message_ids, minlength=inc.num_messages)
    D = int(lengths.max()) if lengths.size else 0
    if C <= B:
        colors = np.zeros(inc.num_messages, dtype=np.int64)
        trace = None
    else:
        trace = reduce_multiplex_size(paths, B=B, D=D, rng=rng, mode=mode)
        colors = trace.colors
    schedule = ColorClassSchedule.from_colors(colors, message_length, D)
    return ScheduleBuild(
        schedule=schedule,
        congestion=C,
        dilation=D,
        num_classes=schedule.num_classes,
        trace=trace,
    )


def greedy_conflict_coloring(
    paths: Sequence[Path] | Sequence[Sequence[int]],
) -> np.ndarray:
    """Greedy coloring of the worm conflict graph (footnote 5).

    Two worms conflict iff their paths share an edge; the conflict graph
    has degree at most ``D(C - 1)`` so greedy coloring uses at most
    ``D(C - 1) + 1`` colors.  Returns a dense color array.
    """
    inc = MessageEdgeIncidence.from_paths(paths)
    M = inc.num_messages
    if M == 0:
        return np.zeros(0, dtype=np.int64)

    # Enumerate conflict pairs edge by edge without an M x M matrix:
    # group incidences by edge, emit every within-group pair, then dedupe
    # unordered pairs via a combined a*M+b key.
    ids = np.asarray(inc.message_ids, dtype=np.int64)
    eids = np.asarray(inc.edge_ids, dtype=np.int64)
    sort = np.lexsort((ids, eids))
    m_sorted = ids[sort]
    _, group_start, group_size = np.unique(
        eids[sort], return_index=True, return_counts=True
    )
    # Entry p (position q in a group of n) pairs with the n - 1 - q
    # entries after it.
    pos = np.arange(m_sorted.size) - np.repeat(group_start, group_size)
    reps = np.repeat(group_size, group_size) - 1 - pos
    first_idx = np.repeat(np.arange(m_sorted.size), reps)
    ends = np.cumsum(reps)
    offset = np.arange(int(ends[-1]) if ends.size else 0) - np.repeat(
        ends - reps, reps
    )
    second = m_sorted[first_idx + 1 + offset]
    first = m_sorted[first_idx]

    # Paths are edge-simple (enforced by the incidence builder), so
    # lo < hi always; dedupe pairs that share several edges.
    lo = np.minimum(first, second)
    hi = np.maximum(first, second)
    key = np.unique(lo * M + hi)
    lo, hi = key // M, key % M
    src = np.concatenate([lo, hi])
    dst = np.concatenate([hi, lo])

    deg = np.bincount(src, minlength=M)
    indptr = np.zeros(M + 1, dtype=np.int64)
    np.cumsum(deg, out=indptr[1:])
    adj = dst[np.argsort(src, kind="stable")]

    colors = np.full(M, -1, dtype=np.int64)
    # Color in order of decreasing degree (Welsh-Powell) for tighter
    # counts; stable argsort breaks ties by message index, matching the
    # stable Python sort this replaces.
    order = np.argsort(-deg, kind="stable")
    for m in order:
        used = colors[adj[indptr[m] : indptr[m + 1]]]
        # First free color: at most deg[m] colors are in use around m,
        # so a presence table of deg[m] + 1 slots always has a hole.
        present = np.zeros(int(deg[m]) + 1, dtype=bool)
        present[used[(used >= 0) & (used < present.size)]] = True
        colors[m] = int(np.argmin(present))
    return colors


def naive_coloring_schedule(
    paths: Sequence[Path] | Sequence[Sequence[int]],
    message_length: int,
) -> ScheduleBuild:
    """Footnote 5's baseline: route one conflict-free class at a time.

    Any class routes in ``L + D - 1`` steps with no waiting (no two worms
    of a class intersect), giving ``O((L + D) C D)`` total.  Valid for
    any ``B >= 1`` since the classes are conflict-free even at ``B = 1``.
    """
    paths = list(paths)
    colors = greedy_conflict_coloring(paths)
    as_paths = [p if isinstance(p, Path) else None for p in paths]
    if all(p is not None for p in as_paths):
        C = congestion(as_paths)  # type: ignore[arg-type]
        D = dilation(as_paths)  # type: ignore[arg-type]
    else:
        inc = MessageEdgeIncidence.from_paths(paths)
        C = multiplex_size(inc, np.zeros(inc.num_messages, dtype=np.int64))
        lengths = np.bincount(inc.message_ids, minlength=inc.num_messages)
        D = int(lengths.max()) if lengths.size else 0
    schedule = ColorClassSchedule.from_colors(colors, message_length, D)
    return ScheduleBuild(
        schedule=schedule,
        congestion=C,
        dilation=D,
        num_classes=schedule.num_classes,
        trace=None,
    )
