"""The Theorem 2.2.1 hard instance: ``Omega(L C D^(1/B) / B)`` flit steps.

Construction (Section 2.2): pick the largest ``M'`` with
``2 C(M'-1, B) - 1 <= D``.  Create one **primary edge** per
``(B+1)``-subset of the ``M'`` base messages — every set of ``B+1``
messages shares a distinct primary edge.  Each message traverses its
primary edges (the subsets containing it) in lexicographic order,
connected by **secondary edges**; its dilation is
``2 C(M'-1, B) - 1 <= D`` (padded to exactly ``D`` on request).  Finally
each base message is replicated ``C / (B+1)`` times, giving primary-edge
congestion exactly ``C`` and ``M = C M' / (B+1)`` messages total.

Why it is hard: a message *makes progress* in a step only if one of its
first ``L - D`` flits reaches the destination, which requires the worm to
occupy **every** edge on its path.  Since any ``B + 1`` messages share a
primary edge with only ``B`` virtual channels, at most ``B`` messages can
make progress per flit step, so routing takes at least
``(L - D) M / B = Omega(L C D^(1/B) / B)`` steps (``M' = Omega(B D^(1/B))``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations

import numpy as np

from ..network.graph import Network, NetworkError

__all__ = ["HardInstance", "build_hard_instance", "max_m_prime", "hard_instance_lower_bound"]


def max_m_prime(D: int, B: int) -> int:
    """Largest ``M'`` with ``2 C(M'-1, B) - 1 <= D`` (and ``M' >= B+1``)."""
    if D < B + 1:
        raise NetworkError(f"need D >= B + 1 (got D={D}, B={B})")
    m = B + 1
    while 2 * math.comb(m, B) - 1 <= D:  # try M' = m + 1 (uses C(M'-1, B))
        m += 1
    if 2 * math.comb(m - 1, B) - 1 > D:
        raise NetworkError(f"no feasible M' for D={D}, B={B}")
    return m


@dataclass(frozen=True)
class HardInstance:
    """A built Theorem 2.2.1 instance."""

    network: Network
    paths: list[list[int]]  # edge-id lists
    m_prime: int
    num_messages: int
    congestion: int
    dilation: int
    B: int
    primary_edges: tuple[int, ...]
    base_message_of: np.ndarray  # replica -> base message id

    def recommended_length(self, factor: float = 2.0) -> int:
        """An ``L = (1 + Omega(1)) D`` message length (default ``2D``)."""
        return int(math.ceil(factor * self.dilation))


def build_hard_instance(
    C: int,
    D: int,
    B: int,
    pad_to_dilation: bool = True,
) -> HardInstance:
    """Build the network and message set of Theorem 2.2.1.

    Parameters
    ----------
    C:
        Target congestion; rounded down to a multiple of ``B + 1`` (the
        replication factor must be integral), with a floor of ``B + 1``.
    D:
        Target dilation; must be at least ``B + 1``.
    B:
        Virtual channels per edge; the instance is built *for* this ``B``
        (its primary edges each carry ``B + 1`` base messages).
    pad_to_dilation:
        Append private chain edges so every path has length exactly ``D``.
    """
    if C < B + 1:
        raise NetworkError(f"need C >= B + 1 (got C={C}, B={B})")
    m_prime = max_m_prime(D, B)
    replication = C // (B + 1)
    subsets = list(combinations(range(m_prime), B + 1))
    net = Network(name=f"hard_instance(C={C}, D={D}, B={B})")

    # Two nodes and one primary edge per (B+1)-subset.
    primary_edge: dict[tuple[int, ...], int] = {}
    entry_node: dict[tuple[int, ...], int] = {}
    exit_node: dict[tuple[int, ...], int] = {}
    for s in subsets:
        u = net.add_node(("in", s))
        v = net.add_node(("out", s))
        entry_node[s] = u
        exit_node[s] = v
        primary_edge[s] = net.add_edge(u, v)

    # Secondary edges: between consecutive primary edges of each base
    # message, deduplicated so messages sharing a transition share the
    # edge (their count is at most B: a transition S -> T is shared only
    # by messages in S intersect T minus endpoints' structure).
    secondary_edge: dict[tuple[tuple[int, ...], tuple[int, ...]], int] = {}
    base_paths: list[list[int]] = []
    for msg in range(m_prime):
        own = [s for s in subsets if msg in s]  # lexicographic by construction
        edges = [primary_edge[own[0]]]
        for prev, nxt in zip(own[:-1], own[1:]):
            key = (prev, nxt)
            if key not in secondary_edge:
                secondary_edge[key] = net.add_edge(exit_node[prev], entry_node[nxt])
            edges.append(secondary_edge[key])
            edges.append(primary_edge[nxt])
        base_paths.append(edges)

    natural_d = len(base_paths[0])
    if natural_d > D:
        raise NetworkError("internal error: construction exceeded dilation budget")
    if pad_to_dilation and natural_d < D:
        for msg in range(m_prime):
            last_head = net.head(base_paths[msg][-1])
            prev = last_head
            for i in range(D - natural_d):
                nxt = net.add_node(("pad", msg, i))
                base_paths[msg].append(net.add_edge(prev, nxt))
                prev = nxt

    paths = []
    base_of = []
    for msg in range(m_prime):
        for _ in range(replication):
            paths.append(list(base_paths[msg]))
            base_of.append(msg)

    return HardInstance(
        network=net,
        paths=paths,
        m_prime=m_prime,
        num_messages=len(paths),
        congestion=replication * (B + 1),
        dilation=len(base_paths[0]),
        B=B,
        primary_edges=tuple(primary_edge[s] for s in subsets),
        base_message_of=np.asarray(base_of, dtype=np.int64),
    )


def hard_instance_lower_bound(inst: HardInstance, L: int) -> float:
    """The proof's explicit bound ``(L - D) M / B`` in flit steps.

    ``M`` is the replicated message count; requires ``L > D``.
    """
    if L <= inst.dilation:
        raise NetworkError("the progress argument needs L > D")
    return (L - inst.dilation) * inst.num_messages / inst.B
