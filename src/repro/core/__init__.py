"""The paper's contribution: schedulers, bounds, and butterfly algorithms."""

from . import bounds
from .butterfly_lower_bound import (
    OnePassOutcome,
    collides,
    one_pass_route,
    phase_partition,
    strip_collision_counts,
    strip_decomposition,
    subset_collision_rate,
    truncated_paths,
)
from .benes_routing import route_permutation_benes, route_q_relation_benes
from .butterfly_routing import (
    ButterflyRouter,
    ButterflyRoutingResult,
    RoundStats,
    arbitrate_levels,
)
from .coloring import (
    MessageEdgeIncidence,
    RefinementStage,
    RefinementTrace,
    lemma_2_1_5_parameters,
    merge_color_classes,
    multiplex_size,
    reduce_multiplex_size,
    refine_colors,
)
from .hypercube_routing import (
    HypercubeRoutingResult,
    route_hypercube_permutation,
)
from .leveled import leveled_bound, random_delay_release, route_leveled_greedy
from .multibutterfly_routing import MultibutterflyRouter
from .online_routing import online_window, route_online_random_delays
from .lower_bound import (
    HardInstance,
    build_hard_instance,
    hard_instance_lower_bound,
    max_m_prime,
)
from .schedule import ColorClassSchedule, execute_schedule
from .scheduler import (
    ScheduleBuild,
    greedy_conflict_coloring,
    lll_schedule,
    naive_coloring_schedule,
)

__all__ = [
    "ButterflyRouter",
    "ButterflyRoutingResult",
    "ColorClassSchedule",
    "HardInstance",
    "HypercubeRoutingResult",
    "MessageEdgeIncidence",
    "MultibutterflyRouter",
    "OnePassOutcome",
    "RefinementStage",
    "RefinementTrace",
    "RoundStats",
    "ScheduleBuild",
    "arbitrate_levels",
    "bounds",
    "build_hard_instance",
    "collides",
    "execute_schedule",
    "greedy_conflict_coloring",
    "hard_instance_lower_bound",
    "lemma_2_1_5_parameters",
    "leveled_bound",
    "lll_schedule",
    "max_m_prime",
    "merge_color_classes",
    "multiplex_size",
    "naive_coloring_schedule",
    "one_pass_route",
    "online_window",
    "phase_partition",
    "random_delay_release",
    "reduce_multiplex_size",
    "refine_colors",
    "route_hypercube_permutation",
    "route_leveled_greedy",
    "route_online_random_delays",
    "route_permutation_benes",
    "route_q_relation_benes",
    "strip_collision_counts",
    "strip_decomposition",
    "subset_collision_rate",
    "truncated_paths",
]
