"""Conflict-free permutation routing on Benes networks (Waksman [48]).

Section 1.3.3: Waksman's algorithm sets the switches of a Benes network
to realize any permutation with edge-disjoint paths, so wormhole routing
finishes in exactly ``L + D - 1`` flit steps with no blocking — but it
needs *global* knowledge of the permutation (it was used on the IBM
GF-11).  This facade ties :func:`repro.network.benes.waksman_paths` to
the flit-level simulator and asserts the guarantee.

q-relations route as ``q`` successive permutation batches (decompose the
relation into permutations by Hall's theorem; here the caller supplies
the batches or uses :func:`route_q_relation_benes` with per-round
permutations), giving ``O(q L + log n)`` flit steps as the paper notes.
"""

from __future__ import annotations

import numpy as np

from ..network.benes import Benes, waksman_paths
from ..network.graph import NetworkError
from ..sim.stats import SimulationResult
from ..sim.wormhole import WormholeSimulator

__all__ = ["route_permutation_benes", "route_q_relation_benes"]


def route_permutation_benes(
    perm: np.ndarray,
    message_length: int,
    B: int = 1,
    seed: int | None = 0,
) -> SimulationResult:
    """Route permutation ``perm`` on a Benes network in ``L + D - 1`` steps.

    Raises :class:`NetworkError` if the run blocks or overruns — which
    the Waksman construction guarantees cannot happen.
    """
    perm = np.asarray(perm, dtype=np.int64)
    L = int(message_length)
    if L < 1:
        raise NetworkError("message length must be >= 1")
    benes = Benes(perm.size)
    cols = waksman_paths(perm)
    edges = benes.columns_to_edges(cols)
    sim = WormholeSimulator(benes.to_network(), num_virtual_channels=B, seed=seed)
    result = sim.run([list(r) for r in edges], message_length=L)
    expected = L + benes.depth - 1
    if not result.all_delivered or result.total_blocked_steps != 0:
        raise NetworkError("Waksman routing blocked; construction broken")
    if result.makespan != expected:
        raise NetworkError(
            f"Waksman routing took {result.makespan} != {expected} steps"
        )
    return result


def route_q_relation_benes(
    perms: list[np.ndarray],
    message_length: int,
    B: int = 1,
    seed: int | None = 0,
) -> SimulationResult:
    """Route a q-relation given as ``q`` permutation batches.

    Batches are pipelined ``L + 1`` flit steps apart (a batch's worms
    hold each first-level buffer for ``L + 1`` steps), achieving the
    ``O(q L + log n)`` total the paper quotes for Waksman-style routing.
    All batches run in one simulation; the result covers all ``q * n``
    messages.
    """
    if not perms:
        raise NetworkError("need at least one permutation batch")
    L = int(message_length)
    if L < 1:
        raise NetworkError("message length must be >= 1")
    n = int(np.asarray(perms[0]).size)
    benes = Benes(n)
    net = benes.to_network()
    all_paths: list[list[int]] = []
    releases: list[int] = []
    for i, perm in enumerate(perms):
        perm = np.asarray(perm, dtype=np.int64)
        if perm.size != n:
            raise NetworkError("all batches must be over the same n")
        edges = benes.columns_to_edges(waksman_paths(perm))
        all_paths.extend([list(r) for r in edges])
        releases.extend([i * (L + 1)] * n)
    sim = WormholeSimulator(net, num_virtual_channels=B, seed=seed)
    result = sim.run(
        all_paths,
        message_length=L,
        release_times=np.asarray(releases, dtype=np.int64),
    )
    if not result.all_delivered:
        raise NetworkError("Benes q-relation routing failed to deliver")
    return result
