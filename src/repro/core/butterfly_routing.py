"""The randomized butterfly wormhole algorithm of Section 3.1.

Routes any ``q``-relation on an ``n``-input butterfly in
``O(L (q + log n) (log^(1/B) n) log log(nq) / B)`` flit steps w.h.p.
(Theorem 3.1.1), for ``B <= log log n / log log log n``.

The algorithm runs ``2 log log(nq) + 1`` rounds; each round:

1. every input makes **two copies** of each of its undelivered messages
   (skipped in round 0);
2. every message picks a color uniformly from ``{1..Delta}`` with
   ``Delta = beta q log^(1/B) n / B``;
3. the round runs ``Delta`` *subrounds*, one color each, pipelined so a
   new subround launches every ``L`` flit steps; a message makes **two
   passes** through the butterfly (Fig. 2): input -> uniformly random
   level-``log n`` intermediate -> true destination output;
4. a message *delayed at any switch is discarded* and resent next round.

Key structural fact exploited here: all worms of a subround inject
simultaneously into a leveled network, and a worm that would stall is
instead killed — so surviving heads stay level-synchronized, and the
dynamics reduce to per-edge arbitration at each of the ``2 log n``
levels: where more than ``B`` same-subround worms want an edge, ``B``
random winners survive (those that would have gotten the ``B`` virtual
channels) and the rest are discarded.  That reduction is exact for this
discard-on-delay discipline and lets the whole subround run as a few
vectorized NumPy passes; tests cross-validate it against the generic
flit-level simulator.

Timing follows the proof of Theorem 3.1.1: each round costs
``L * Delta + 2 * (2 log n)`` flit steps (pipelined subrounds, path
length ``2 log n``), independent of how many messages survive.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..network.butterfly import Butterfly
from ..network.graph import NetworkError
from ..routing.problems import RoutingInstance
from .bounds import log2c, num_colors, num_rounds

__all__ = [
    "ButterflyRouter",
    "RoundStats",
    "ButterflyRoutingResult",
    "arbitrate_levels",
]


def arbitrate_levels(
    edges: np.ndarray, B: int, rng: np.random.Generator
) -> np.ndarray:
    """Run the level-synchronized discard dynamics for one subround.

    Parameters
    ----------
    edges:
        ``(m, depth)`` edge ids — row ``i`` is message ``i``'s path.
    B:
        Virtual channels per edge: survivors per edge per level.
    rng:
        Random arbitration among contenders.

    Returns
    -------
    Boolean survivor mask of shape ``(m,)``: True iff the message was
    never delayed (it won a virtual channel at every level).
    """
    m = edges.shape[0]
    alive = np.ones(m, dtype=bool)
    for level in range(edges.shape[1]):
        idx = np.flatnonzero(alive)
        if idx.size == 0:
            break
        lvl = edges[idx, level]
        prio = rng.random(idx.size)
        order = np.lexsort((prio, lvl))
        sorted_edges = lvl[order]
        new_group = np.empty(order.size, dtype=bool)
        new_group[0] = True
        new_group[1:] = sorted_edges[1:] != sorted_edges[:-1]
        group_start = np.maximum.accumulate(
            np.where(new_group, np.arange(order.size), 0)
        )
        rank = np.arange(order.size) - group_start
        keep = np.empty(order.size, dtype=bool)
        keep[order] = rank < B
        alive[idx[~keep]] = False
    return alive


@dataclass(frozen=True)
class RoundStats:
    """Per-round telemetry.

    ``max_copies_per_input`` / ``..._output`` track Invariant 3.1.2: after
    the copying step, at most ``q`` messages should originate at any
    input or target any output, w.h.p.
    """

    round_index: int
    num_candidates: int  # message copies entering the round
    num_survivors: int  # copies that completed both passes
    originals_remaining: int  # distinct original messages still undelivered
    flit_steps: int  # cost of this round
    num_colors: int
    max_copies_per_input: int = 0
    max_copies_per_output: int = 0


@dataclass
class ButterflyRoutingResult:
    """Outcome of a full run of the Section 3.1 algorithm."""

    delivered: np.ndarray  # bool per original message
    total_flit_steps: int
    rounds: list[RoundStats] = field(default_factory=list)

    @property
    def all_delivered(self) -> bool:
        return bool(self.delivered.all())

    @property
    def num_rounds_used(self) -> int:
        return len(self.rounds)


class ButterflyRouter:
    """The Section 3.1 randomized two-pass q-relation router.

    Parameters
    ----------
    n:
        Butterfly inputs (power of two).
    B:
        Virtual channels per edge.  The theorem needs
        ``B <= log log n / log log log n``; larger values still run but
        the bound no longer applies (a warning field is set).
    message_length:
        ``L`` in flits; only enters the flit-step accounting.
    beta:
        The color-count constant (``Delta = beta q log^(1/B) n / B``).
    seed:
        Reproducible randomness for colors, intermediates, arbitration.
    """

    def __init__(
        self,
        n: int,
        B: int = 1,
        message_length: int = 1,
        beta: float = 1.0,
        seed: int | None = 0,
    ) -> None:
        if B < 1:
            raise NetworkError("B must be >= 1")
        if message_length < 1:
            raise NetworkError("message length must be >= 1")
        self.bf = Butterfly(n, passes=2)
        self.n = n
        self.log_n = self.bf.log_n
        self.B = B
        self.L = int(message_length)
        self.beta = float(beta)
        self._rng = np.random.default_rng(seed)
        llln = log2c(log2c(n))
        lllln = max(log2c(llln), 1.0)
        self.b_within_theorem = B <= max(llln / lllln, 1.0)

    # ------------------------------------------------------------------
    def route(
        self,
        instance: RoutingInstance,
        max_rounds: int | None = None,
        pad_small_q: bool = True,
        duplicate_small_q: bool = False,
    ) -> ButterflyRoutingResult:
        """Deliver (a copy of) every message of ``instance``.

        ``instance`` gives (input, output) pairs; ``q`` is measured from
        it.  With ``pad_small_q`` (the paper's treatment of
        ``q < log n``), the *color count and round count* are computed as
        if ``q = Theta(log n)`` — the analysis pads with duplicate
        messages; padding only the parameters preserves the timing model
        without simulating dummy traffic.  ``duplicate_small_q`` goes
        further and performs the paper's duplication *literally*: each
        message is replicated ``ceil(log n / q)`` times up front, and
        delivery of any replica counts (the extra replicas also raise
        each round's success probability, at the cost of more simulated
        traffic).

        Rounds beyond the paper's ``2 log log(nq) + 1`` are run only if
        messages remain and ``max_rounds`` allows (default: paper count
        plus a safety margin of 10; the result reports actual usage).
        """
        if instance.n != self.n:
            raise NetworkError(
                f"instance is over {instance.n} endpoints, butterfly has {self.n}"
            )
        q = max(instance.max_per_source(), instance.max_per_dest(), 1)
        q_eff = max(q, int(math.ceil(log2c(self.n)))) if pad_small_q else q
        delta = num_colors(self.n, q_eff, self.B, self.beta)
        paper_rounds = num_rounds(self.n, q_eff)
        if max_rounds is None:
            max_rounds = paper_rounds + 10

        M = instance.num_messages
        delivered = np.zeros(M, dtype=bool)
        result = ButterflyRoutingResult(
            delivered=delivered, total_flit_steps=0
        )
        # Subrounds pipeline L+1 flit steps apart (one more than the
        # paper's L: a head-of-edge buffer is vacated one step after the
        # last flit crosses; tests/test_integration.py validates that
        # this spacing gives zero cross-subround interference), plus the
        # two passes' drain time.
        round_cost = (self.L + 1) * delta + 2 * (2 * self.log_n)

        copies_src = instance.sources.copy()
        copies_dst = instance.dests.copy()
        copies_orig = np.arange(M, dtype=np.int64)
        if duplicate_small_q and q < q_eff:
            dup = int(math.ceil(q_eff / q))
            copies_src = np.repeat(copies_src, dup)
            copies_dst = np.repeat(copies_dst, dup)
            copies_orig = np.repeat(copies_orig, dup)

        for r in range(max_rounds):
            pending = ~delivered[copies_orig]
            copies_src = copies_src[pending]
            copies_dst = copies_dst[pending]
            copies_orig = copies_orig[pending]
            if copies_orig.size == 0:
                break
            if r > 0:
                # Step 1: two copies of every undelivered message.
                copies_src = np.repeat(copies_src, 2)
                copies_dst = np.repeat(copies_dst, 2)
                copies_orig = np.repeat(copies_orig, 2)
            num_candidates = copies_orig.size
            max_in = int(np.bincount(copies_src, minlength=self.n).max())
            max_out = int(np.bincount(copies_dst, minlength=self.n).max())
            # Step 2: colors.
            colors = self._rng.integers(0, delta, size=num_candidates)
            # Step 3: subrounds (pipelined; cost accounted per round).
            survivors_round = 0
            for c in range(delta):
                sel = np.flatnonzero(colors == c)
                if sel.size == 0:
                    continue
                mids = self._rng.integers(0, self.n, size=sel.size)
                edges = self.bf.two_pass_path_edges_batch(
                    copies_src[sel], mids, copies_dst[sel]
                )
                alive = arbitrate_levels(edges, self.B, self._rng)
                winners = sel[alive]
                survivors_round += winners.size
                delivered[copies_orig[winners]] = True
            result.total_flit_steps += round_cost
            result.rounds.append(
                RoundStats(
                    round_index=r,
                    num_candidates=num_candidates,
                    num_survivors=survivors_round,
                    originals_remaining=int((~delivered).sum()),
                    flit_steps=round_cost,
                    num_colors=delta,
                    max_copies_per_input=max_in,
                    max_copies_per_output=max_out,
                )
            )
            if delivered.all():
                break
        return result
