"""Online network-independent wormhole routing (the [13] contrast).

The Theorem 2.1.6 schedule is *offline*: it examines the whole network
and message set.  The paper highlights that Cypher, Meyer auf der Heide,
Scheideler and Vocking [13] achieve comparable bounds
(``O((L C D^(1/B) + (L+D) log n) / B)``-flavored) with an *online*
algorithm the switches can execute themselves.

We implement the core online mechanism their family of algorithms (and
the store-and-forward online results [26, 27]) build on — **randomized
initial delays**: each message independently delays an integral number
of ``L``-flit slots drawn uniformly from ``[0, W)`` and then injects
greedily, with no further coordination.  The window ``W`` trades startup
latency against contention; ``W ~ C D^(1/B) / B`` slots mirrors the
[13] bound shape and is the default.

This is a documented *substitution* (DESIGN.md): the exact [13] protocol
(growing ranks with duplicate elimination) is replaced by the simpler
random-delay protocol over the same model, preserving the property the
experiments probe — online, local, randomized, with the same parameter
shape.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from ..network.graph import Network, NetworkError
from ..routing.paths import Path, congestion, dilation
from ..sim.stats import SimulationResult
from ..sim.wormhole import WormholeSimulator

__all__ = ["online_window", "route_online_random_delays"]


def online_window(C: int, D: int, B: int, alpha: float = 1.0) -> int:
    """Delay-window size in ``L``-slots: ``ceil(alpha * C * D^(1/B) / B)``."""
    if C < 1 or D < 1 or B < 1 or alpha <= 0:
        raise ValueError("need C, D, B >= 1 and alpha > 0")
    return max(1, int(math.ceil(alpha * C * (D ** (1.0 / B)) / B)))


def route_online_random_delays(
    net: Network,
    paths: Sequence[Path] | Sequence[Sequence[int]],
    message_length: int,
    B: int = 1,
    alpha: float = 1.0,
    window: int | None = None,
    rng: np.random.Generator | None = None,
    seed: int | None = 0,
) -> SimulationResult:
    """Online protocol: random start slot in ``[0, window)``, then greedy.

    Parameters
    ----------
    net, paths, message_length, B:
        As for :class:`~repro.sim.wormhole.WormholeSimulator`.
    alpha:
        Window constant when ``window`` is derived from ``C, D, B``.
    window:
        Explicit window in ``L``-slots (overrides ``alpha``).
    rng:
        Randomness for the delays (``seed`` drives arbitration).
    """
    L = int(message_length)
    if L < 1:
        raise NetworkError("message length must be >= 1")
    path_list = list(paths)
    as_paths = [
        p if isinstance(p, Path) else None for p in path_list
    ]
    if all(p is not None for p in as_paths):
        C = congestion(as_paths)  # type: ignore[arg-type]
        D = dilation(as_paths)  # type: ignore[arg-type]
    else:
        from .coloring import MessageEdgeIncidence, multiplex_size

        inc = MessageEdgeIncidence.from_paths(path_list)
        C = multiplex_size(inc, np.zeros(inc.num_messages, dtype=np.int64))
        lengths = np.bincount(inc.message_ids, minlength=inc.num_messages)
        D = int(lengths.max()) if lengths.size else 1
    if window is None:
        window = online_window(max(C, 1), max(D, 1), B, alpha)
    if rng is None:
        rng = np.random.default_rng(seed)
    release = rng.integers(0, window, size=len(path_list)).astype(np.int64) * L
    sim = WormholeSimulator(net, num_virtual_channels=B, seed=seed)
    return sim.run(path_list, message_length=L, release_times=release)
