"""Wormhole routing schedules (the object Theorem 2.1.6 constructs).

A schedule assigns each message a *release time*; the router injects a
message as soon as possible after its release.  Theorem 2.1.6's schedules
have a special structure: messages are partitioned into color classes of
multiplex size at most ``B``, and class ``i`` is released at
``(i - 1)(L + D - 1)`` — within a class no worm is ever blocked (at most
``B`` same-class worms share any edge, one per virtual channel), so every
class finishes before the next is released.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..network.graph import Network, NetworkError
from ..routing.paths import Path, dilation
from ..sim.stats import SimulationResult
from ..sim.wormhole import WormholeSimulator

__all__ = ["ColorClassSchedule", "execute_schedule"]


@dataclass(frozen=True)
class ColorClassSchedule:
    """A release schedule derived from a message coloring.

    Attributes
    ----------
    colors:
        Dense color id per message (``0 .. num_classes - 1``).
    message_length:
        The ``L`` the schedule was built for.
    dilation:
        The path set's ``D``.
    phase_length:
        Flit steps between consecutive class releases; the canonical
        value is the unobstructed completion time ``L + D - 1``.
    """

    colors: np.ndarray
    message_length: int
    dilation: int
    phase_length: int

    def __post_init__(self) -> None:
        colors = np.asarray(self.colors)
        if colors.size and colors.min() < 0:
            raise NetworkError("colors must be nonnegative")
        if self.phase_length < 1:
            raise NetworkError("phase length must be >= 1")

    @classmethod
    def from_colors(
        cls, colors: np.ndarray, message_length: int, D: int
    ) -> "ColorClassSchedule":
        """Canonical schedule: one class every ``L + D - 1`` steps."""
        return cls(
            colors=np.asarray(colors, dtype=np.int64),
            message_length=int(message_length),
            dilation=int(D),
            phase_length=int(message_length) + int(D) - 1 if int(D) > 0 else int(message_length),
        )

    @property
    def num_classes(self) -> int:
        return int(self.colors.max()) + 1 if self.colors.size else 0

    @property
    def length_bound(self) -> int:
        """Guaranteed completion time: ``num_classes * phase_length``."""
        return self.num_classes * self.phase_length

    def release_times(self) -> np.ndarray:
        """Per-message release flit steps (class ``i`` at ``i * phase``)."""
        return self.colors * self.phase_length


def execute_schedule(
    net: Network,
    paths: Sequence[Path] | Sequence[Sequence[int]],
    schedule: ColorClassSchedule,
    B: int,
    require_unblocked: bool = True,
    seed: int | None = 0,
    telemetry=None,
) -> SimulationResult:
    """Run a schedule through the flit-level simulator and validate it.

    With ``require_unblocked`` (the Theorem 2.1.6 guarantee) the run must
    deliver every message with **zero** blocked steps and finish within
    ``schedule.length_bound``; violations raise :class:`NetworkError`.

    ``telemetry`` is forwarded to :meth:`WormholeSimulator.run` so
    :mod:`repro.telemetry` probes can observe scheduler-driven runs.
    """
    sim = WormholeSimulator(net, num_virtual_channels=B, seed=seed)
    result = sim.run(
        paths,
        message_length=schedule.message_length,
        release_times=schedule.release_times(),
        telemetry=telemetry,
    )
    if require_unblocked:
        if not result.all_delivered:
            raise NetworkError("schedule failed to deliver every message")
        if result.total_blocked_steps != 0:
            raise NetworkError(
                f"schedule blocked for {result.total_blocked_steps} "
                "message-steps; multiplex size must exceed B"
            )
        if result.makespan > schedule.length_bound:
            raise NetworkError(
                f"schedule overran its bound: {result.makespan} > "
                f"{schedule.length_bound}"
            )
    return result


def schedule_for_paths(
    paths: Sequence[Path], message_length: int, colors: np.ndarray
) -> ColorClassSchedule:
    """Convenience: canonical schedule with ``D`` measured from ``paths``."""
    return ColorClassSchedule.from_colors(
        colors, message_length, dilation(paths)
    )
