"""Butterfly lower-bound machinery (Section 3.2).

Theorem 3.2.1: any *one-pass* routing algorithm needs
``Omega(L q l^(1/B) / (w2(n,q) B))`` flit steps on a random routing
problem with ``q`` messages per input, ``l = min(L, log n)``.  The proof
has two halves, both implemented here:

* **Theorem 3.2.5** — every set of ``s`` messages *collides* (some
  ``B + 1`` of them share an edge of the truncated butterfly,
  Definition 3.2.2) with high probability, for
  ``s = 3 B n log^(2/B)(q log n) / l^(1/(B+1))``.  We expose the exact
  collision predicate and Monte-Carlo subset probing.
* **Theorem 3.2.6** — a routing that finishes in ``T`` steps yields
  ``T / L`` *phases* whose members' headers arrive together, so some
  ``n q L / T`` messages arrive in one phase and must be collision-free;
  hence ``T >= n q L / s``.

:func:`one_pass_route` runs an actual greedy one-pass wormhole algorithm
(the class the bound covers) through the flit-level simulator so
experiment E4 can compare measured times against the bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..network.butterfly import Butterfly
from ..network.graph import NetworkError
from ..routing.problems import RoutingInstance
from ..sim.stats import SimulationResult
from ..sim.wormhole import WormholeSimulator
from .bounds import butterfly_subset_size

__all__ = [
    "truncated_paths",
    "collides",
    "subset_collision_rate",
    "phase_partition",
    "one_pass_route",
    "strip_decomposition",
    "strip_collision_counts",
    "OnePassOutcome",
]


def truncated_paths(
    n: int, instance: RoutingInstance, L: int
) -> tuple[Butterfly, np.ndarray]:
    """Greedy paths in the truncated butterfly of depth ``l = min(L, log n)``.

    Section 3.2 analyzes only the first ``l`` levels: any routing
    algorithm on the full butterfly induces one on the truncation that is
    at least as fast.  Destinations are mapped to their column's node at
    level ``l``.
    """
    log_n = n.bit_length() - 1
    l = min(L, log_n)
    if l < 1:
        raise NetworkError("truncated butterfly needs depth >= 1")
    bf = Butterfly(n, depth=l)
    edges = bf.path_edges_batch(instance.sources, instance.dests)
    return bf, edges


def collides(edge_matrix: np.ndarray, B: int) -> bool:
    """Definition 3.2.2: do ``B + 1`` of these messages share an edge?

    ``edge_matrix`` holds one message per row; multiple uses of an edge
    *within* one row (impossible for butterfly paths, but possible for
    caller-supplied sets) are counted once.
    """
    if edge_matrix.size == 0:
        return False
    counts: dict[int, int] = {}
    for row in edge_matrix:
        for e in np.unique(row):
            c = counts.get(int(e), 0) + 1
            if c > B:
                return True
            counts[int(e)] = c
    return False


def subset_collision_rate(
    edge_matrix: np.ndarray,
    s: int,
    B: int,
    trials: int,
    rng: np.random.Generator,
) -> float:
    """Monte-Carlo estimate of ``Pr[random s-subset collides]``.

    Theorem 3.2.5 asserts this tends to 1 (indeed, *every* subset
    collides w.h.p.) once ``s`` reaches
    :func:`~repro.core.bounds.butterfly_subset_size`.
    """
    M = edge_matrix.shape[0]
    if s > M:
        raise NetworkError(f"cannot sample {s}-subsets of {M} messages")
    hits = 0
    for _ in range(trials):
        pick = rng.choice(M, size=s, replace=False)
        if collides(edge_matrix[pick], B):
            hits += 1
    return hits / trials


def phase_partition(arrival_times: np.ndarray, l: int, L: int) -> np.ndarray:
    """Phase index of each message (Theorem 3.2.6).

    The proof shows every header arrives at the truncation's last level
    at a time of the form ``l + i L``; empirically we bucket arrivals by
    ``floor((t - l) / L)`` (arrivals before ``l`` go to phase 0).
    Returns the per-message phase indices for delivered messages and
    ``-1`` elsewhere.
    """
    t = np.asarray(arrival_times, dtype=np.int64)
    phases = np.full(t.shape, -1, dtype=np.int64)
    ok = t >= 0
    phases[ok] = np.maximum((t[ok] - l) // max(L, 1), 0)
    return phases


def strip_decomposition(bf: Butterfly) -> list[tuple[int, int]]:
    """Lemma 3.2.4's strips: ``(start_level, end_level)`` pairs.

    The truncated butterfly of depth ``l`` is cut into ``l / log m``
    strips of ``log m`` edge-levels each, ``m = log n`` (the last strip
    may be shorter).  Within a strip, the network splits into disjoint
    ``m``-input subbutterflies, which is what makes the per-strip
    collision events independent in the proof.
    """
    m = max(int(math.floor(math.log2(max(bf.n.bit_length() - 1, 2)))), 1)
    strips = []
    start = 0
    while start < bf.depth:
        strips.append((start, min(start + m, bf.depth)))
        start += m
    return strips


def strip_collision_counts(
    bf: Butterfly,
    edges: np.ndarray,
    B: int,
) -> list[int]:
    """Messages involved in a collision, per strip (Lemma 3.2.4 probe).

    For each strip, counts how many of the ``edges``-matrix messages
    share a strip edge with more than ``B - 1`` others.  The lemma lower
    bounds the probability that *some* strip collides; empirically the
    counts grow with load and the no-collision event dies off strip by
    strip.
    """
    out = []
    for start, end in strip_decomposition(bf):
        sub = edges[:, start:end]
        flat = sub.ravel()
        counts = np.bincount(flat, minlength=bf.num_edges)
        hot = counts > B
        involved = hot[sub].any(axis=1)
        out.append(int(involved.sum()))
    return out


@dataclass(frozen=True)
class OnePassOutcome:
    """A one-pass run plus the quantities Theorem 3.2.1 relates."""

    result: SimulationResult
    bf: Butterfly
    l: int
    s_bound: float
    time_lower_bound: float  # n q L / s

    @property
    def measured_time(self) -> int:
        return self.result.makespan


def one_pass_route(
    n: int,
    instance: RoutingInstance,
    B: int,
    L: int,
    seed: int | None = 0,
) -> OnePassOutcome:
    """Run a greedy one-pass wormhole algorithm on the truncated butterfly.

    All messages are injected at time 0 and contend for virtual channels
    under random arbitration — a representative member of the one-pass
    class Theorem 3.2.1 lower-bounds.  Header arrival at the last level
    is ``completion - (L - 1)``.
    """
    bf, edges = truncated_paths(n, instance, L)
    sim = WormholeSimulator(bf, num_virtual_channels=B, seed=seed)
    result = sim.run([list(row) for row in edges], message_length=L)
    q = max(instance.max_per_source(), 1)
    s = butterfly_subset_size(n, q, L, B)
    nq = instance.num_messages
    return OnePassOutcome(
        result=result,
        bf=bf,
        l=bf.depth,
        s_bound=s,
        time_lower_bound=nq * L / max(s, 1.0),
    )
