"""Closed-form evaluations of every bound in the paper.

All functions return the bound *without* its unspecified constant factor
(i.e. the expression inside the O(.) / Omega(.)); experiment harnesses
report measured/bound ratios and check they stay within a bounded band
while the parameter *shape* matches.

``log`` is base-2 throughout, matching the paper ("we use log n to denote
log_2 n"), and arguments of logs are clamped to 2 so the formulas stay
finite on the small instances a simulator can afford.
"""

from __future__ import annotations

import math

__all__ = [
    "aiello_randomized_oblivious",
    "borodin_hopcroft_oblivious",
    "butterfly_lower_bound",
    "butterfly_subset_size",
    "butterfly_upper_bound",
    "color_classes_bound",
    "general_lower_bound",
    "general_upper_bound",
    "koch_circuit_throughput",
    "log2c",
    "naive_coloring_bound",
    "num_colors",
    "num_rounds",
    "oblivious_wormhole_lower_bound",
    "ranade_b1_butterfly_lower",
    "store_forward_bound",
    "unobstructed_time",
    "virtual_channel_speedup",
]


def log2c(x: float) -> float:
    """``log2`` clamped below at 1 (i.e. ``log2(max(x, 2))``).

    The paper's asymptotic formulas contain ``log D``, ``log log n`` etc.
    that vanish or go negative at simulator scales; clamping keeps every
    bound positive and monotone without changing asymptotics.
    """
    return math.log2(max(x, 2.0))


def unobstructed_time(L: int, D: int) -> int:
    """Flit steps for a never-blocked worm: ``L + D - 1`` (Section 1)."""
    return L + D - 1


def naive_coloring_bound(L: int, C: int, D: int) -> float:
    """Footnote 5's naive schedule: ``(L + D) C D`` flit steps."""
    return (L + D) * C * D


def store_forward_bound(L: int, C: int, D: int) -> float:
    """Leighton-Maggs-Rao [27]: ``L (C + D)`` flit steps (optimal offline)."""
    return L * (C + D)


def general_upper_bound(L: int, C: int, D: int, B: int) -> float:
    """Theorem 2.1.6 schedule length in flit steps.

    ``(L+D) C (D C)^(1/B) / B`` when ``C <= log D`` (case 1), else
    ``(L+D) C (D log D)^(1/B) / B`` (cases 2a / 2).
    """
    _check_params(L, C, D, B)
    if C <= log2c(D):
        inner = D * C
    else:
        inner = D * log2c(D)
    return (L + D) * C * inner ** (1.0 / B) / B


def general_lower_bound(L: int, C: int, D: int, B: int) -> float:
    """Theorem 2.2.1: ``L C D^(1/B) / B`` flit steps."""
    _check_params(L, C, D, B)
    return L * C * D ** (1.0 / B) / B


def color_classes_bound(C: int, D: int, B: int) -> float:
    """Number of color classes produced by Theorem 2.1.6:
    ``C (D log D)^(1/B) / B`` (``C (D C)^(1/B)/B`` for small C)."""
    _check_params(1, C, D, B)
    if C <= log2c(D):
        inner = D * C
    else:
        inner = D * log2c(D)
    return C * inner ** (1.0 / B) / B


def virtual_channel_speedup(D: int, B: int) -> float:
    """Section 1.4's headline: speedup ``B * D^(1 - 1/B)`` over ``B = 1``.

    Ratio of the ``B = 1`` lower-bound form ``L C D`` to the ``B``-channel
    form ``L C D^(1/B) / B`` — superlinear in ``B`` whenever ``D > 1``.
    """
    if D < 1 or B < 1:
        raise ValueError("need D >= 1 and B >= 1")
    return B * D ** (1.0 - 1.0 / B)


def w1(n: int, q: int) -> float:
    """The slowly-growing factor of Theorem 3.1.1: ``log log (n q)``."""
    return log2c(log2c(n * q))


def butterfly_upper_bound(L: int, q: int, n: int, B: int) -> float:
    """Theorem 3.1.1: ``L (q + log n) (log^(1/B) n) log log(nq) / B``."""
    if L < 1 or q < 1 or n < 2 or B < 1:
        raise ValueError("need L, q >= 1, n >= 2, B >= 1")
    log_n = log2c(n)
    return L * (q + log_n) * (log_n ** (1.0 / B)) * w1(n, q) / B


def w2(n: int, q: int, L: int, B: int) -> float:
    """Theorem 3.2.1's slowly-growing factor
    ``l^(1/B^2) log^(2/B)(q log n)``, ``l = min(L, log n)``."""
    l = min(L, log2c(n))
    return (max(l, 2.0) ** (1.0 / B**2)) * (log2c(q * log2c(n)) ** (2.0 / B))


def butterfly_lower_bound(L: int, q: int, n: int, B: int) -> float:
    """Theorem 3.2.1: ``L q l^(1/B) / (w2(n,q) B)``, ``l = min(L, log n)``."""
    if L < 1 or q < 1 or n < 2 or B < 1:
        raise ValueError("need L, q >= 1, n >= 2, B >= 1")
    l = min(L, log2c(n))
    return L * q * (max(l, 2.0) ** (1.0 / B)) / (w2(n, q, L, B) * B)


def butterfly_subset_size(n: int, q: int, L: int, B: int) -> float:
    """Theorem 3.2.5's ``s = 3 B n log^(2/B)(q log n) / l^(1/(B+1))``.

    Every set of ``s`` messages (of the ``n q`` total) collides w.h.p.
    """
    if L < 1 or q < 1 or n < 2 or B < 1:
        raise ValueError("need L, q >= 1, n >= 2, B >= 1")
    l = min(L, log2c(n))
    return 3 * B * n * (log2c(q * log2c(n)) ** (2.0 / B)) / (max(l, 2.0) ** (1.0 / (B + 1)))


def koch_circuit_throughput(n: int, B: int) -> float:
    """Koch [22]: expected circuit-switching survivors ``n / log^(1/B) n``."""
    if n < 2 or B < 1:
        raise ValueError("need n >= 2 and B >= 1")
    return n / (log2c(n) ** (1.0 / B))


def borodin_hopcroft_oblivious(n: int, d: int) -> float:
    """Borodin-Hopcroft [9] (Section 1.3.2): some permutation forces a
    deterministic oblivious store-and-forward router on an n-node,
    degree-d network to take ``Omega(sqrt(n) / d^(3/2))`` message steps
    — later improved to ``Omega(sqrt(n) / d)`` by Kaklamanis et al.
    Returns the improved form ``sqrt(n) / d``."""
    if n < 1 or d < 1:
        raise ValueError("need n, d >= 1")
    return math.sqrt(n) / d


def oblivious_wormhole_lower_bound(n: int, d: int, L: int, B: int) -> float:
    """Section 1.3.2's translation of the congestion-based oblivious
    lower bound to wormhole flit steps: ``Omega(L sqrt(n) / (d B))``."""
    if L < 1 or B < 1:
        raise ValueError("need L, B >= 1")
    return L * borodin_hopcroft_oblivious(n, d) / B


def aiello_randomized_oblivious(n: int, d: int, L: int, B: int) -> float:
    """Aiello et al. [1] (Section 1.3.2): almost all permutations force
    randomized oblivious routers to take
    ``Omega(L log n / (B (log d + log log n)))`` flit steps."""
    if n < 2 or d < 1 or L < 1 or B < 1:
        raise ValueError("need n >= 2, d, L, B >= 1")
    return L * log2c(n) / (B * (log2c(d) + log2c(log2c(n))))


def ranade_b1_butterfly_lower(n: int) -> float:
    """Ranade et al. [41] (Section 1.3.3): routing a log n-relation with
    L = log n and B = 1 needs ``Omega(log^3 n / (log log n)^2)`` flit
    steps — nearly matched by known O(log^3 n / log log n) algorithms."""
    if n < 2:
        raise ValueError("need n >= 2")
    ln = log2c(n)
    return ln**3 / (log2c(ln) ** 2)


def num_rounds(n: int, q: int) -> int:
    """Rounds of the Section 3.1 algorithm: ``2 log log (n q) + 1``."""
    return 2 * int(math.ceil(log2c(log2c(n * q)))) + 1


def num_colors(n: int, q: int, B: int, beta: float = 1.0) -> int:
    """Colors per round: ``Delta = beta q log^(1/B) n / B`` (Section 3.1)."""
    if q < 1 or n < 2 or B < 1 or beta <= 0:
        raise ValueError("need q >= 1, n >= 2, B >= 1, beta > 0")
    return max(1, int(math.ceil(beta * q * (log2c(n) ** (1.0 / B)) / B)))


def _check_params(L: int, C: int, D: int, B: int) -> None:
    if L < 1 or C < 1 or D < 1 or B < 1:
        raise ValueError("need L, C, D, B >= 1")
