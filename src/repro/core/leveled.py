"""Wormhole routing on leveled networks (Ranade-Schleimer-Wilkerson [41]).

Section 1.3.1: on any *leveled* network (every edge goes from level ``i``
to ``i+1``), any set of ``L``-flit messages with congestion ``C`` and
dilation ``D`` can be routed in ``O(L C D)`` flit steps — better than the
naive ``O((L+D) C D)`` and, per their matching construction, tight for
``B = 1``.  Leveled networks also make wormhole routing deadlock-free
for free: the channel dependency graph follows the level order, so it is
acyclic and greedy injection always finishes.

This module provides:

* :func:`route_leveled_greedy` — greedy injection on a verified leveled
  network (the algorithm class [41] analyzes), returning the flit-level
  result for comparison with the ``L C D`` form;
* :func:`random_delay_release` — the classic smoothing trick: delay each
  message by a uniform multiple of ``L`` in ``[0, C)`` message-slots,
  which spreads contention and empirically tightens the constant.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..network.graph import Network, NetworkError
from ..routing.paths import Path
from ..sim.stats import SimulationResult
from ..sim.wormhole import WormholeSimulator

__all__ = ["route_leveled_greedy", "random_delay_release", "leveled_bound"]


def leveled_bound(L: int, C: int, D: int) -> float:
    """[41]'s leveled-network bound ``L C D`` (flit steps, ``B = 1``)."""
    if L < 1 or C < 1 or D < 1:
        raise ValueError("need L, C, D >= 1")
    return float(L) * C * D


def random_delay_release(
    num_messages: int,
    message_length: int,
    C: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Initial delays ``L * uniform{0..C-1}`` per message.

    Aligning delays to multiples of ``L`` means two messages offset by
    different slots never fight for an edge at the same flit step unless
    one of them was already delayed in the network — the smoothing idea
    behind the randomized online algorithms of [26, 27].
    """
    if message_length < 1 or C < 1:
        raise NetworkError("need message_length >= 1 and C >= 1")
    return (
        rng.integers(0, C, size=num_messages).astype(np.int64) * message_length
    )


def route_leveled_greedy(
    net: Network,
    paths: Sequence[Path] | Sequence[Sequence[int]],
    message_length: int,
    B: int = 1,
    release_times: np.ndarray | None = None,
    seed: int | None = 0,
    check_leveled: bool = True,
) -> SimulationResult:
    """Greedy wormhole routing on a leveled network.

    Raises if ``net`` is not leveled (unless ``check_leveled=False``);
    leveledness is what guarantees deadlock freedom here, so the check is
    on by default.  The run is asserted deadlock-free.
    """
    if check_leveled and not net.is_leveled():
        raise NetworkError("network is not leveled")
    sim = WormholeSimulator(net, num_virtual_channels=B, seed=seed)
    result = sim.run(
        paths, message_length=message_length, release_times=release_times
    )
    if result.deadlocked:  # pragma: no cover - leveledness forbids this
        raise NetworkError("leveled run deadlocked; model invariant broken")
    return result
