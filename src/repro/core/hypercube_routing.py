"""Randomized hypercube permutation routing (Aiello et al. [1] style).

Section 1.3.4: Aiello, Leighton, Maggs and Newman route any permutation
of ``n`` ``L``-flit messages on an ``n``-node hypercube in
``O(L + log n)`` flit steps, using a small constant number of virtual
channels, assuming each node services all ``log n`` of its edges
simultaneously (which our per-edge model does naturally).

We implement the classic two-phase scheme their result refines:

1. **Phase 1 (Valiant):** every message routes by greedy bit-fixing to a
   uniformly random intermediate node;
2. **Phase 2:** it continues by bit-fixing to its true destination.

Random intermediates break any adversarial structure; with high
probability both phases' path sets have congestion ``O(log n / log log
n)``-ish, so a constant number of virtual channels keeps worms flowing
and total time is ``O(L + log n)``.  We route the two phases back to
back through the flit-level simulator (phase 2 is released after phase 1
completes, the batch analogue of their pipelining) and expose both the
combined and per-phase results.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..network.graph import NetworkError
from ..network.hypercube import Hypercube, bit_fixing_path
from ..routing.paths import congestion, paths_from_node_walks
from ..routing.problems import RoutingInstance
from ..sim.stats import SimulationResult
from ..sim.wormhole import WormholeSimulator

__all__ = ["HypercubeRoutingResult", "route_hypercube_permutation"]


@dataclass(frozen=True)
class HypercubeRoutingResult:
    """Outcome of the two-phase hypercube route."""

    phase1: SimulationResult
    phase2: SimulationResult
    total_flit_steps: int
    congestion_phase1: int
    congestion_phase2: int

    @property
    def all_delivered(self) -> bool:
        return self.phase1.all_delivered and self.phase2.all_delivered


def route_hypercube_permutation(
    cube: Hypercube,
    instance: RoutingInstance,
    message_length: int,
    B: int = 2,
    rng: np.random.Generator | None = None,
    seed: int | None = 0,
) -> HypercubeRoutingResult:
    """Route ``instance`` on ``cube`` by two-phase randomized bit-fixing.

    Parameters
    ----------
    cube:
        The hypercube.
    instance:
        Source/destination pairs over ``cube.n`` nodes (any h-relation;
        permutations are the classic case).
    message_length:
        ``L`` in flits.
    B:
        Virtual channels per edge; [1] needs only a small constant.
    rng:
        Randomness for intermediate destinations (``seed`` drives the
        simulator arbitration).

    Notes
    -----
    Phase 2 starts when phase 1 has fully completed.  This wastes at most
    a factor 2 versus pipelining and keeps each phase's analysis clean;
    the returned ``total_flit_steps`` is the sum of the two makespans.
    """
    if instance.n != cube.n:
        raise NetworkError(
            f"instance is over {instance.n} endpoints, hypercube has {cube.n}"
        )
    if message_length < 1:
        raise NetworkError("message length must be >= 1")
    if rng is None:
        rng = np.random.default_rng(seed)
    mids = rng.integers(0, cube.n, size=instance.num_messages)

    dim = cube.dimension
    walks1 = [
        bit_fixing_path(int(s), int(m), dim)
        for s, m in zip(instance.sources, mids)
    ]
    walks2 = [
        bit_fixing_path(int(m), int(d), dim)
        for m, d in zip(mids, instance.dests)
    ]
    paths1 = paths_from_node_walks(cube.network, walks1)
    paths2 = paths_from_node_walks(cube.network, walks2)

    sim = WormholeSimulator(cube.network, num_virtual_channels=B, seed=seed)
    res1 = sim.run(paths1, message_length=message_length)
    res2 = sim.run(paths2, message_length=message_length)
    total = int(max(res1.makespan, 0) + max(res2.makespan, 0))
    return HypercubeRoutingResult(
        phase1=res1,
        phase2=res2,
        total_flit_steps=total,
        congestion_phase1=congestion(paths1),
        congestion_phase2=congestion(paths2),
    )
