"""Balls-in-bins machinery for the Section 3.2 lower bound.

Lemma 3.2.3: throwing ``m <= n`` balls independently and uniformly into
``n`` bins, the probability that **no** bin receives more than ``B`` balls
is at most ``exp(-alpha m^(B+2) / ((2B n)^(B+1) B))`` for a positive
constant ``alpha``.  (The proof's final display carries ``m^(B+1)``; the
statement's ``m^(B+2)`` follows from multiplying the per-bin failure
probability across ``m/2B`` inspected bins.  We expose both exponents.)

The lemma feeds the strip decomposition of Lemma 3.2.4: messages entering
an ``m``-input subbutterfly with random outputs collide (``B+1`` on one
edge) unless the balls-in-bins event fails in every strip.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "prob_no_bin_exceeds",
    "max_load_samples",
    "lemma_3_2_3_bound",
    "per_bin_overflow_lower_bound",
]


def prob_no_bin_exceeds(
    m: int,
    n: int,
    B: int,
    trials: int,
    rng: np.random.Generator,
) -> float:
    """Monte-Carlo estimate of ``Pr[max bin load <= B]``.

    Vectorized: all ``trials`` experiments are thrown at once.
    """
    if m < 0 or n < 1 or B < 0 or trials < 1:
        raise ValueError("need m >= 0, n >= 1, B >= 0, trials >= 1")
    if m == 0:
        return 1.0
    bins = rng.integers(0, n, size=(trials, m))
    # Per-trial max load via offset bincount.
    offsets = np.arange(trials, dtype=np.int64)[:, None] * n
    flat = (bins + offsets).ravel()
    counts = np.bincount(flat, minlength=trials * n).reshape(trials, n)
    return float((counts.max(axis=1) <= B).mean())


def max_load_samples(
    m: int, n: int, trials: int, rng: np.random.Generator
) -> np.ndarray:
    """Sampled maximum bin loads for ``m`` balls in ``n`` bins."""
    bins = rng.integers(0, n, size=(trials, m))
    offsets = np.arange(trials, dtype=np.int64)[:, None] * n
    flat = (bins + offsets).ravel()
    counts = np.bincount(flat, minlength=trials * n).reshape(trials, n)
    return counts.max(axis=1)


def per_bin_overflow_lower_bound(m: int, n: int, B: int) -> float:
    """The proof's lower bound on one inspected bin overflowing.

    With at least ``m/2`` balls still unassigned, the chance an inspected
    bin receives more than ``B`` balls is at least
    ``C(m/2, B+1) n^-(B+1) (1 - 1/n)^(m/2)``, which the proof further
    lower-bounds by ``alpha' m^(B+1) / (2B n)^(B+1)``.  We return the
    exact binomial form (the sharper of the two).
    """
    half = m // 2
    if half < B + 1:
        return 0.0
    log_p = (
        math.lgamma(half + 1)
        - math.lgamma(B + 2)
        - math.lgamma(half - B)
        - (B + 1) * math.log(n)
        + half * math.log(max(1.0 - 1.0 / n, 1e-300))
    )
    return math.exp(min(log_p, 0.0))


def lemma_3_2_3_bound(
    m: int, n: int, B: int, alpha: float = 1.0, statement_exponent: bool = True
) -> float:
    """Lemma 3.2.3's closed form ``exp(-alpha m^e / ((2Bn)^(B+1) B))``.

    ``statement_exponent=True`` uses the statement's ``e = B+2``; ``False``
    uses the proof display's ``e = B+1``.  ``alpha`` is the unspecified
    positive constant.
    """
    if m < 0 or n < 1 or B < 1:
        raise ValueError("need m >= 0, n >= 1, B >= 1")
    e = B + 2 if statement_exponent else B + 1
    exponent = alpha * (m**e) / (((2 * B * n) ** (B + 1)) * B)
    return math.exp(-exponent)
