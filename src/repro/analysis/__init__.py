"""Probabilistic toolbox and experiment reporting."""

from .balls_bins import (
    lemma_3_2_3_bound,
    max_load_samples,
    per_bin_overflow_lower_bound,
    prob_no_bin_exceeds,
)
from .circuit_recursion import (
    edge_load_distribution,
    expected_survivors,
    kruskal_snir_b1_probability,
)
from .estimate import (
    ESTIMATABLE_MODELS,
    DelayEnvelope,
    EstimateError,
    estimate_paths,
    estimate_spec,
    estimate_workload,
)
from .fitting import PowerLawFit, fit_power_law, loglog_slope
from .lll import (
    bad_event_probability_case12,
    bad_event_probability_case3,
    binomial,
    chernoff_upper_tail,
    lll_condition,
    log_binomial,
)
from .render import render_butterfly, render_route, render_spacetime
from .tables import Table, format_value

__all__ = [
    "DelayEnvelope",
    "ESTIMATABLE_MODELS",
    "EstimateError",
    "PowerLawFit",
    "Table",
    "bad_event_probability_case12",
    "bad_event_probability_case3",
    "binomial",
    "chernoff_upper_tail",
    "edge_load_distribution",
    "estimate_paths",
    "estimate_spec",
    "estimate_workload",
    "expected_survivors",
    "fit_power_law",
    "format_value",
    "kruskal_snir_b1_probability",
    "lemma_3_2_3_bound",
    "lll_condition",
    "log_binomial",
    "loglog_slope",
    "max_load_samples",
    "per_bin_overflow_lower_bound",
    "prob_no_bin_exceeds",
    "render_butterfly",
    "render_route",
    "render_spacetime",
]
