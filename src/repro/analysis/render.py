"""ASCII rendering of networks and worm dynamics.

Visualization helpers for debugging and for the Figure reproductions:

* :func:`render_butterfly` — a textual Fig. 1: levels, columns, and the
  straight/cross wiring rule per level;
* :func:`render_route` — a hop table for one path through a butterfly
  (the Fig. 2 artifact);
* :func:`render_spacetime` — a worm spacetime diagram from a traced
  :class:`~repro.sim.wormhole.WormholeSimulator` run: one row per flit
  step, one column per message, showing each worm's head position along
  its path (``.`` = not yet injected, ``*`` = delivered).  Blocking shows
  up as vertically repeated digits.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..network.butterfly import Butterfly

__all__ = ["render_butterfly", "render_route", "render_spacetime"]


def render_butterfly(bf: Butterfly) -> str:
    """Textual reproduction of Fig. 1 for any butterfly / cascade."""
    lines = [
        f"{bf.n}-input butterfly, {bf.num_levels} levels "
        f"({bf.num_nodes} nodes, {bf.num_edges} edges)"
    ]
    for level in range(bf.num_levels):
        row = " ".join(f"({w},{level})" for w in range(bf.n))
        lines.append(row)
        if level < bf.depth:
            bit = 1 << bf.cross_bit(level)
            lines.append(f"   | straight: w -> w;  cross: w -> w ^ {bit}")
    return "\n".join(lines)


def render_route(bf: Butterfly, edges: Sequence[int]) -> str:
    """Hop-by-hop table of a butterfly route (the Fig. 2 artifact)."""
    lines = ["hop  level  column -> column  kind"]
    for hop, e in enumerate(edges):
        tail, head = bf.edge_endpoints(int(e))
        kind = "straight" if bf.column_of(tail) == bf.column_of(head) else "cross"
        lines.append(
            f"{hop:>3}  {bf.level_of(tail):>5}  "
            f"{bf.column_of(tail):>6} -> {bf.column_of(head):<6}  {kind}"
        )
    return "\n".join(lines)


def render_spacetime(
    trace: np.ndarray,
    path_lengths: Sequence[int],
    message_length: int,
    max_rows: int = 200,
) -> str:
    """Worm spacetime diagram from a recorded trace.

    Parameters
    ----------
    trace:
        ``(steps, M)`` array of completed-move counts (``-1`` before
        release), as produced by attaching a
        :class:`repro.telemetry.TraceSnapshotCollector` and reading its
        ``matrix``.
    path_lengths:
        Per-message ``D_m`` (to mark delivery).
    message_length:
        ``L``, to compute delivery at ``k == L + D - 1``.
    max_rows:
        Truncate very long runs (a marker line notes the cut).

    Returns
    -------
    One text row per flit step.  Cell characters: ``.`` not released,
    ``-`` released but still waiting in the injection buffer,
    ``0``-``9``/``a``-``z`` the head flit's edge index along the path
    (mod 36; a worm with ``k`` completed moves has its head at edge
    ``k - 1``), ``*`` delivered.
    """
    trace = np.asarray(trace)
    if trace.ndim != 2:
        raise ValueError("trace must be a (steps, M) array")
    steps, M = trace.shape
    D = np.asarray(path_lengths, dtype=np.int64)
    if D.shape != (M,):
        raise ValueError(f"path_lengths must have shape ({M},)")
    digits = "0123456789abcdefghijklmnopqrstuvwxyz"
    lines = [f"t    {' '.join(f'm{m:<2}' for m in range(M))}"]
    shown = min(steps, max_rows)
    for t in range(shown):
        cells = []
        for m in range(M):
            kv = int(trace[t, m])
            if kv < 0:
                cells.append(".")
            elif kv >= message_length + D[m] - 1:
                cells.append("*")
            elif kv == 0:
                cells.append("-")
            else:
                head = min(kv - 1, int(D[m]) - 1)
                cells.append(digits[head % len(digits)])
        lines.append(f"{t + 1:<4} " + "   ".join(cells))
    if steps > shown:
        lines.append(f"... ({steps - shown} more steps)")
    return "\n".join(lines)
