"""Probabilistic toolbox: Lovász local lemma and Chernoff bounds.

Section 2.1 of the paper rests on two classical lemmas:

* **Lemma 2.1.1 (Lovász).**  If each of a set of bad events occurs with
  probability at most ``q`` and depends on at most ``b`` others, and
  ``4 q b < 1``, then with nonzero probability no bad event occurs.
* **Lemma 2.1.2 (Chernoff).**  For a sum ``X`` of independent Bernoulli
  trials with mean ``mu`` and any ``0 < delta <= 1``,
  ``Pr[X > (1 + delta) mu] < exp(-mu delta^2 / 3)``.

These helpers evaluate the bounds numerically (in log space where
necessary) so the scheduler can *check* that each refinement stage's
parameters satisfy the paper's conditions, and so tests can confirm the
three cases of Lemma 2.1.5 verify ``4 q b < 1`` exactly as the proof
claims.
"""

from __future__ import annotations

import math

from scipy.special import gammaln

__all__ = [
    "lll_condition",
    "chernoff_upper_tail",
    "log_binomial",
    "binomial",
    "bad_event_probability_case12",
    "bad_event_probability_case3",
]


def lll_condition(q: float, b: float) -> bool:
    """Lemma 2.1.1's sufficient condition ``4 q b < 1``."""
    if q < 0 or b < 0:
        raise ValueError("q and b must be nonnegative")
    return 4.0 * q * b < 1.0


def chernoff_upper_tail(mu: float, delta: float) -> float:
    """Lemma 2.1.2: ``Pr[X > (1+delta) mu] < exp(-mu delta^2 / 3)``.

    Valid for ``0 < delta <= 1``; we clamp larger deltas to 1, which only
    weakens the bound (the paper applies it with ``delta <= 1``).
    """
    if mu < 0:
        raise ValueError("mu must be nonnegative")
    if delta <= 0:
        raise ValueError("delta must be positive")
    delta = min(delta, 1.0)
    return math.exp(-mu * delta * delta / 3.0)


def log_binomial(n: float, k: float) -> float:
    """``log C(n, k)`` via log-gamma (valid for real ``n >= k >= 0``)."""
    if k < 0 or k > n:
        return float("-inf")
    return float(gammaln(n + 1) - gammaln(k + 1) - gammaln(n - k + 1))


def binomial(n: int, k: int) -> int:
    """Exact integer binomial coefficient."""
    return math.comb(n, k)


def bad_event_probability_case12(ms: int, mf: int, r: int) -> float:
    """Bound on the bad-event probability used in cases 1-2 of Lemma 2.1.5.

    A bad event is "more than ``mf`` messages of one new color class use a
    given edge".  With at most ``ms`` same-color messages on the edge and
    each independently keeping the color with probability ``1/r``, the
    probability is at most ``C(ms, mf) * r**(-mf)`` (union over which
    ``mf`` messages stay, each staying with probability ``1/r``) — the
    quantity the proof writes as ``(ms choose mf) r^-mf``.
    """
    if mf > ms:
        return 0.0
    log_p = log_binomial(ms, mf) - mf * math.log(r)
    return math.exp(min(log_p, 0.0))


def bad_event_probability_case3(ms: int, mf: int, r: int) -> float:
    """Chernoff-based bad-event bound used in case 3 of Lemma 2.1.5.

    The number of same-new-color messages on an edge is a Binomial
    ``(ms, 1/r)`` with mean ``mu <= ms / r``; the proof bounds
    ``Pr[X > mf]`` by ``exp(-mu delta^2 / 3)`` with ``delta = mf/mu - 1``.
    """
    mu = ms / r
    if mf <= mu:
        return 1.0
    delta = mf / mu - 1.0
    return chernoff_upper_tail(mu, delta)
