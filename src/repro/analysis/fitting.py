"""Power-law fitting for experiment series.

The paper's bounds are power laws in D, B, n (``D^(1/B)``,
``log^(1/B) n``, ...); the experiment harness checks their *shape* by
estimating exponents from measured series with ordinary least squares in
log-log space.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PowerLawFit", "fit_power_law", "loglog_slope"]


@dataclass(frozen=True)
class PowerLawFit:
    """Result of fitting ``y = coefficient * x**exponent``."""

    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.coefficient * np.asarray(x, dtype=np.float64) ** self.exponent


def fit_power_law(x: np.ndarray, y: np.ndarray) -> PowerLawFit:
    """OLS fit of ``log y = log c + a log x``.

    Requires strictly positive data and at least two distinct ``x``.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1 or x.size < 2:
        raise ValueError("need equal-length 1-d arrays with >= 2 points")
    if (x <= 0).any() or (y <= 0).any():
        raise ValueError("power-law fitting needs strictly positive data")
    lx, ly = np.log(x), np.log(y)
    if np.allclose(lx, lx[0]):
        raise ValueError("need at least two distinct x values")
    lx_c = lx - lx.mean()
    a = float((lx_c * (ly - ly.mean())).sum() / (lx_c * lx_c).sum())
    logc = float(ly.mean() - a * lx.mean())
    resid = ly - (logc + a * lx)
    total = ly - ly.mean()
    ss_tot = float((total * total).sum())
    r2 = 1.0 - float((resid * resid).sum()) / ss_tot if ss_tot > 0 else 1.0
    return PowerLawFit(exponent=a, coefficient=float(np.exp(logc)), r_squared=r2)


def loglog_slope(x: np.ndarray, y: np.ndarray) -> float:
    """Shortcut for :func:`fit_power_law`'s exponent."""
    return fit_power_law(x, y).exponent
