"""ASCII result tables for the experiment harness.

The paper has no numeric tables (it is a theory paper), so the benchmark
harness prints its *measured vs. bound* series in a uniform tabular form;
EXPERIMENTS.md records the same rows.  Keeping the renderer here (rather
than in each bench) makes the output format consistent and testable.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

__all__ = ["Table", "format_value"]


def format_value(v: object, precision: int = 3) -> str:
    """Human formatting: ints plain, floats to ``precision`` significant digits."""
    if isinstance(v, bool):
        return str(v)
    if isinstance(v, int):
        return str(v)
    if isinstance(v, float):
        if v != v:  # NaN
            return "nan"
        if v == 0:
            return "0"
        if abs(v) >= 10000 or abs(v) < 0.001:
            return f"{v:.{precision}g}"
        return f"{v:.{precision}g}"
    return str(v)


@dataclass
class Table:
    """A fixed-column ASCII table.

    >>> t = Table("demo", ["a", "b"])
    >>> t.add_row([1, 2.5])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    demo
    a | b
    --+----
    1 | 2.5
    """

    title: str
    headers: Sequence[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, values: Iterable[object], precision: int = 3) -> None:
        row = [format_value(v, precision) for v in values]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)).rstrip())
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                " | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
            )
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
