"""Analytic survival recursion for circuit-switched butterflies.

Kruskal and Snir [24] analyzed circuit switching on banyan networks with
an independence recursion: track, level by level, the distribution of
the number of circuits carried by an edge.  Koch [22] generalized the
analysis to capacity ``B`` (our E6 regime).  The recursion:

* an edge at level ``l+1`` is fed by its tail node, which receives the
  circuits of its two incoming level-``l`` edges;
* each arriving circuit independently requests this out-edge with
  probability 1/2 (random destinations);
* the edge carries ``min(requests, B)`` circuits; the surplus is dropped.

Treating the two feeding edges as independent (exact on trees, and
asymptotically accurate on butterflies — the dependence vanishes as
``n`` grows) gives a ``(B+1)``-state distribution recursion.  Expected
survivors are ``2 n E[circuits per final edge]``.

This module provides the recursion and the closed Kruskal-Snir special
case ``B = 1`` (``p' = 1 - (1 - p/2)^2``), so experiments can compare
analysis against the Monte-Carlo simulator in :mod:`repro.sim.circuit`.
"""

from __future__ import annotations

import math

import numpy as np

from ..network.butterfly import is_power_of_two

__all__ = [
    "edge_load_distribution",
    "expected_survivors",
    "kruskal_snir_b1_probability",
]


def _binomial_split(dist: np.ndarray) -> np.ndarray:
    """Distribution of requests to one out-edge given ``dist`` circuits
    at the tail node, each choosing the edge with probability 1/2."""
    max_c = dist.size - 1
    out = np.zeros(max_c + 1)
    for total, p_total in enumerate(dist):
        if p_total == 0:
            continue
        for r in range(total + 1):
            out[r] += p_total * math.comb(total, r) * 0.5**total
    return out


def _cap(dist: np.ndarray, B: int) -> np.ndarray:
    """Truncate a count distribution at capacity ``B`` (drop surplus)."""
    out = np.zeros(B + 1)
    out[: min(dist.size, B + 1)] = dist[: B + 1]
    if dist.size > B + 1:
        out[B] += dist[B + 1 :].sum()
    return out


def edge_load_distribution(n: int, B: int) -> np.ndarray:
    """Distribution of circuits on a final-level edge (independence
    recursion), as a length ``B+1`` probability vector."""
    if not is_power_of_two(n) or n < 2:
        raise ValueError(f"need a power-of-two n >= 2, got {n}")
    if B < 1:
        raise ValueError("capacity B must be >= 1")
    log_n = n.bit_length() - 1
    # Level-1 edges: one message per input picks one of two out-edges.
    dist = _cap(_binomial_split(np.array([0.0, 1.0])), B)
    for _ in range(log_n - 1):
        # Tail node's circuit count = sum of two independent edges.
        node = np.convolve(dist, dist)
        dist = _cap(_binomial_split(node), B)
    return dist


def expected_survivors(n: int, B: int) -> float:
    """Predicted survivor count: ``2 n * E[circuits per final edge]``."""
    dist = edge_load_distribution(n, B)
    return float(2 * n * (np.arange(dist.size) * dist).sum())


def kruskal_snir_b1_probability(n: int) -> float:
    """The classic closed recursion at ``B = 1``:
    ``p_1 = 1/2``; ``p_{l+1} = 1 - (1 - p_l / 2)^2``."""
    if not is_power_of_two(n) or n < 2:
        raise ValueError(f"need a power-of-two n >= 2, got {n}")
    log_n = n.bit_length() - 1
    p = 0.5
    for _ in range(log_n - 1):
        p = 1.0 - (1.0 - p / 2.0) ** 2
    return p
