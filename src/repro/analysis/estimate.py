"""Analytic delay envelopes: the no-simulation estimate tier.

The paper's results are *bounds*, not trajectories — yet every answer
the package gives normally costs a full lockstep simulation.  This
module computes, in O(total path length), a per-workload **delay
envelope** — an analytic lower and upper bound on the greedy makespan —
from nothing but the routing problem: path lengths, per-edge loads
(congestion), dilation, the message length ``L``, and the buffering
knob ``B``.  It is the closed-form tier behind ``mode="estimate"`` in
:func:`repro.simulate` and on v1 wire-protocol run requests (see
:mod:`repro.service.protocol`): services use it to answer in
microseconds and to reject infeasible deadlines before queuing.

Both sides of the envelope are *sound* for the kernels in
:mod:`repro.sim.kernels` (checked continuously by the fuzzer's
``estimate-envelope`` invariant and ``tests/analysis/test_estimate.py``):

Lower bounds (no router can beat them):

* every message still needs its unobstructed time — ``L + d - 1`` flit
  steps for the pipelined models, ``d * ceil(L / B)`` for
  store-and-forward — after its release;
* the busiest edge is a bandwidth bottleneck.  Per edge ``e`` with load
  ``c_e``, the buffer-occupancy term is ``ceil(L * c_e / B)`` for the
  wormhole model (each of the ``c_e`` worms holds one of ``B`` virtual
  channels for ``>= L`` steps), ``L * c_e`` for cut-through and the
  restricted model (those forward at most **one** flit per physical
  edge per step regardless of ``B``), and ``c_e * ceil(L / B)`` for
  store-and-forward (one whole packet per edge per message step).

Upper bounds (progress-budget arguments, valid for runs that finish
without deadlock or a step cap — the step loops declare deadlock the
moment a live step makes no progress, so every counted step consumes
at least one unit of the budget):

* wormhole / adaptive advance rigidly: a message is done after exactly
  ``L + d - 1`` advance steps, so the total budget is
  ``sum_i (L + d_i - 1)`` on top of the last release;
* cut-through / restricted move single flits: the budget is the total
  flit-hop count ``L * sum_i d_i``;
* store-and-forward moves whole packets: ``sum_i d_i`` message steps of
  ``ceil(L / B)`` flit steps each.

Note ``sum_i d_i == sum_e c_e``: the upper bounds are per-edge
buffer-occupancy sums, the lower bounds are per-edge maxima.

The adaptive mesh router chooses among *minimal* productive directions
(:mod:`repro.sim.adaptive`), so each message's hop count is the known
Manhattan distance — but its paths (hence per-edge loads) are chosen
online, so it gets a conservative **upper** bound only (``lower`` is
``None``; the service still uses the unobstructed per-message floor it
shares with the wormhole model for feasibility).  The ``schedule`` and
``continuous`` simulators are not estimable: :class:`EstimateError`.
"""

from __future__ import annotations

import hashlib
import math
from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..network.graph import NetworkError

__all__ = [
    "ESTIMATABLE_MODELS",
    "DelayEnvelope",
    "EstimateError",
    "estimate_paths",
    "estimate_spec",
    "estimate_workload",
]

#: Simulator names with a closed-form envelope.  ``adaptive`` yields an
#: upper bound only (its routes are chosen online).
ESTIMATABLE_MODELS = (
    "wormhole",
    "cut_through",
    "store_forward",
    "restricted",
    "adaptive",
)


class EstimateError(NetworkError):
    """The request has no analytic envelope (e.g. the schedule pipeline)."""


@dataclass(frozen=True)
class DelayEnvelope:
    """Analytic bounds on one workload's greedy routing time.

    All times are **flit steps**, the unit every simulator reports.
    ``lower <= simulated makespan <= upper`` for any run that finishes
    cleanly (no deadlock, no step cap); ``lower`` is ``None`` for the
    adaptive model, whose online route choice hides the edge loads.
    """

    model: str
    B: int
    message_length: int
    messages: int
    #: max per-edge load over the fixed routes (``None`` for adaptive).
    congestion: int | None
    #: max hop count over messages (Manhattan distance for adaptive).
    dilation: int
    #: ``sum_i d_i == sum_e c_e`` — the total buffer-occupancy mass.
    total_path_length: int
    #: number of distinct edges used by the routes (0 for adaptive).
    edges_used: int
    max_release: int
    #: analytic makespan lower bound (``None`` for adaptive).
    lower: int | None
    #: analytic makespan upper bound, conditioned on clean delivery.
    upper: int
    #: per-message delivery-time floors (release + unobstructed time).
    per_message_lower: tuple[int, ...]

    @property
    def tightness(self) -> float | None:
        """``upper / lower`` — how loose the envelope is (None for adaptive)."""
        if self.lower is None or self.lower <= 0:
            return None
        return self.upper / self.lower

    def check(self, makespan: int) -> bool:
        """Does a cleanly-simulated ``makespan`` sit inside the envelope?"""
        if self.lower is not None and makespan < self.lower:
            return False
        return makespan <= self.upper

    def to_metrics(self) -> dict[str, Any]:
        """JSON-safe, wire-ready metrics (deterministic per input)."""
        arr = np.asarray(self.per_message_lower, dtype=np.int64)
        digest = hashlib.sha256(np.ascontiguousarray(arr).tobytes()).hexdigest()
        return {
            "mode": "estimate",
            "model": self.model,
            "B": int(self.B),
            "message_length": int(self.message_length),
            "messages": int(self.messages),
            "congestion": None if self.congestion is None else int(self.congestion),
            "dilation": int(self.dilation),
            "total_path_length": int(self.total_path_length),
            "edges_used": int(self.edges_used),
            "max_release": int(self.max_release),
            "makespan_lower": None if self.lower is None else int(self.lower),
            "makespan_upper": int(self.upper),
            "delay_lower_max": int(arr.max(initial=0)),
            "delay_lower_digest": digest[:16],
            "tightness": self.tightness,
        }


def _as_lengths(path_lengths: Sequence[int] | np.ndarray) -> np.ndarray:
    lengths = np.asarray(path_lengths, dtype=np.int64)
    if lengths.ndim != 1:
        raise EstimateError("path_lengths must be one-dimensional")
    if lengths.size and int(lengths.min()) < 0:
        raise EstimateError("path lengths must be >= 0")
    return lengths


def estimate_paths(
    model: str,
    *,
    message_length: int,
    B: int,
    path_lengths: Sequence[int] | np.ndarray,
    congestion: int | None = None,
    edges_used: int = 0,
    release_times: Sequence[int] | np.ndarray | None = None,
) -> DelayEnvelope:
    """The envelope from raw problem statistics (no workload object).

    ``congestion`` is the max per-edge load of the fixed routes; pass
    ``None`` only for the adaptive model (routes chosen online).  The
    per-edge buffer-occupancy maximum over edges equals the congestion
    term because the occupancy formulas are monotone in the edge load.
    """
    if model not in ESTIMATABLE_MODELS:
        raise EstimateError(
            f"simulator {model!r} has no analytic envelope; estimable "
            f"models: {', '.join(ESTIMATABLE_MODELS)}"
        )
    L = int(message_length)
    if L < 1:
        raise EstimateError("message_length must be >= 1")
    B = int(B)
    if B < 1:
        raise EstimateError("B must be >= 1")
    lengths = _as_lengths(path_lengths)
    M = int(lengths.size)
    if release_times is None:
        release = np.zeros(M, dtype=np.int64)
    else:
        release = np.asarray(release_times, dtype=np.int64)
        if release.shape != lengths.shape:
            raise EstimateError("release_times must match path_lengths")
        if M and int(release.min()) < 0:
            raise EstimateError("release times must be >= 0")
    max_release = int(release.max(initial=0))
    D = int(lengths.max(initial=0))
    total = int(lengths.sum())
    hop = math.ceil(L / B)

    # Per-message floors: release + unobstructed time (zero-length paths
    # are delivered at release without entering the network).
    if model == "store_forward":
        unobstructed = lengths * hop
    else:
        unobstructed = np.where(lengths > 0, L + lengths - 1, 0)
    per_message = release + unobstructed

    C = None if congestion is None else int(congestion)
    if model == "adaptive":
        lower: int | None = None
    else:
        if C is None:
            raise EstimateError(f"model {model!r} needs the route congestion")
        lower = int(per_message.max(initial=0))
        if C >= 1:
            if model == "wormhole":
                occupancy = math.ceil(L * C / B)
            elif model == "store_forward":
                occupancy = C * hop
            else:  # cut_through / restricted: one flit per edge per step
                occupancy = L * C
            lower = max(lower, occupancy)

    # Progress budgets (see module docstring).
    active = lengths[lengths > 0]
    if model in ("wormhole", "adaptive"):
        budget = int((L + active - 1).sum()) if active.size else 0
    elif model == "store_forward":
        budget = int(active.sum()) * hop
    else:
        budget = L * int(active.sum())
    if model == "store_forward" and max_release:
        upper = (math.ceil(max_release / hop)) * hop + budget
    else:
        upper = max_release + budget
    upper = max(upper, int(per_message.max(initial=0)))

    return DelayEnvelope(
        model=model,
        B=B,
        message_length=L,
        messages=M,
        congestion=C,
        dilation=D,
        total_path_length=total,
        edges_used=int(edges_used),
        max_release=max_release,
        lower=lower,
        upper=upper,
        per_message_lower=tuple(int(x) for x in per_message),
    )


def _cube_distances(cube: Any, demands: Sequence[tuple[int, int]]) -> list[int]:
    """Minimal hop counts of mesh demands (the adaptive router's routes
    are minimal, so these are exact per-message path lengths)."""
    dists = []
    for src, dst in demands:
        a, b = cube.coords(int(src)), cube.coords(int(dst))
        d = 0
        for x, y in zip(a, b):
            step = abs(x - y)
            if getattr(cube, "wrap", False):
                step = min(step, cube.k - step)
            d += step
        dists.append(d)
    return dists


def estimate_workload(
    workload: Any,
    model: str,
    *,
    B: int,
    message_length: int | None = None,
    release_times: Sequence[int] | np.ndarray | None = None,
) -> DelayEnvelope:
    """The envelope of a built :class:`~repro.sim.sweep.Workload`."""
    L = workload.default_length if message_length is None else int(message_length)
    if model == "adaptive":
        if workload.cube is None or workload.demands is None:
            raise EstimateError(
                "the adaptive model needs a mesh workload (cube + demands)"
            )
        return estimate_paths(
            model,
            message_length=L,
            B=B,
            path_lengths=_cube_distances(workload.cube, workload.demands),
            release_times=release_times,
        )
    if workload.paths is None:
        raise EstimateError(f"workload has no paths to estimate for {model!r}")
    # Paths are either routing.paths.Path values or plain edge-id lists.
    edge_lists = [getattr(p, "edges", p) for p in workload.paths]
    loads = Counter(edge for edges in edge_lists for edge in edges)
    return estimate_paths(
        model,
        message_length=L,
        B=B,
        path_lengths=[len(edges) for edges in edge_lists],
        congestion=max(loads.values(), default=0),
        edges_used=len(loads),
        release_times=release_times,
    )


def estimate_spec(spec: Any) -> DelayEnvelope:
    """The envelope of one sweep :class:`~repro.sim.sweep.TrialSpec`.

    Deterministic in the spec alone — seeds, repeats, and priorities
    affect arbitration, never the bounds — so estimate responses are
    bit-stable across processes and safe to serve from any replica.
    """
    from ..sim.sweep import _build_workload

    wl = _build_workload(spec.workload, spec.workload_params)
    L = wl.default_length if spec.message_length is None else spec.message_length
    return estimate_workload(wl, spec.simulator, B=spec.B, message_length=L)
