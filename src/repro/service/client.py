"""Client and load generator for the simulation service.

:class:`ServiceClient` is a minimal asyncio client: one TCP connection,
one request/response in flight at a time (the server's per-connection
discipline).  Concurrency comes from opening several clients, which is
exactly what :func:`run_loadgen` does.

The load generator is also the service's *correctness harness*: after
driving ``concurrency`` connections at an optional request rate, it
replays every accepted trial through the sweep runner's serial path
(:func:`repro.sim.sweep._execute_trial` — a plain
:class:`~repro.sim.wormhole.WormholeSimulator` run with the identical
derived seed) and demands byte-identical metrics.  Any divergence —
a batching bug, a seed-derivation drift, a cross-trial state leak —
fails the run.  The latency/throughput/occupancy report it assembles
is what ``repro loadgen`` writes to ``BENCH_service.json``.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field
from typing import Any

from ..sim.sweep import TrialSpec, _execute_trial
from .protocol import (
    MODE_EXACT,
    PROTOCOL_VERSION,
    STATUS_OK,
    ProtocolError,
    RunRequest,
    decode_message,
    encode_message,
    spec_payload,
)
from .server import MAX_LINE_BYTES

__all__ = [
    "LoadgenConfig",
    "ServiceClient",
    "ServiceConnectionError",
    "ServiceTimeoutError",
    "run_loadgen",
]


class ServiceConnectionError(ConnectionError):
    """The server went away mid-request (reset, EOF, refused).

    Raised instead of a raw :class:`ConnectionResetError` traceback so
    callers — the load generator, the cluster router — can attribute
    the failure: the message names the peer, the op, and the request
    id of whatever was in flight.
    """

    def __init__(self, peer: str, op: str, req_id: str, cause: str) -> None:
        super().__init__(
            f"connection to {peer} lost during {op!r} (id={req_id!r}): {cause}"
        )
        self.peer = peer
        self.op = op
        self.req_id = req_id


class ServiceTimeoutError(ServiceConnectionError):
    """A per-request ``timeout_s`` elapsed with no response line."""

    def __init__(self, peer: str, op: str, req_id: str, timeout_s: float) -> None:
        super().__init__(
            peer, op, req_id, f"no response within {timeout_s}s"
        )
        self.timeout_s = timeout_s


class ServiceClient:
    """One connection to a running service (async context manager)."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        peer: str = "server",
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count()
        self.peer = peer

    @classmethod
    async def connect(
        cls, host: str, port: int, *, retry_for_s: float = 0.0
    ) -> "ServiceClient":
        """Connect, optionally retrying while the server starts up."""
        deadline = time.monotonic() + retry_for_s
        while True:
            try:
                reader, writer = await asyncio.open_connection(
                    host, port, limit=MAX_LINE_BYTES
                )
                return cls(reader, writer, peer=f"{host}:{port}")
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                await asyncio.sleep(0.1)

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def request(
        self, msg: dict[str, Any], *, timeout_s: float | None = None
    ) -> dict[str, Any]:
        """Send one message (stamped ``v: 1``) and await its response.

        ``timeout_s`` bounds the whole exchange; expiry raises
        :class:`ServiceTimeoutError` (the connection is then poisoned —
        a late response line would answer the wrong request — so the
        caller must discard this client).  A connection torn down
        mid-exchange raises :class:`ServiceConnectionError` naming the
        peer, op, and request id instead of a raw reset traceback.
        """
        op = str(msg.get("op", "?"))
        req_id = str(msg.get("id", ""))
        msg.setdefault("v", PROTOCOL_VERSION)

        async def exchange() -> bytes:
            self._writer.write(encode_message(msg))
            await self._writer.drain()
            return await self._reader.readline()

        try:
            line = await asyncio.wait_for(exchange(), timeout_s)
        except (asyncio.TimeoutError, TimeoutError):
            raise ServiceTimeoutError(
                self.peer, op, req_id, timeout_s or 0.0
            ) from None
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            raise ServiceConnectionError(
                self.peer, op, req_id, str(exc) or type(exc).__name__
            ) from None
        if not line:
            raise ServiceConnectionError(
                self.peer, op, req_id, "server closed the connection"
            )
        return decode_message(line)

    async def run_trial(
        self,
        spec: TrialSpec | dict[str, Any],
        *,
        root_seed: int = 0,
        deadline_ms: float | None = None,
        req_id: str | None = None,
        timeout_s: float | None = None,
        mode: str = MODE_EXACT,
    ) -> dict[str, Any]:
        rid = req_id if req_id is not None else f"c{next(self._ids)}"
        if isinstance(spec, TrialSpec):
            # The unified request schema: build the RunRequest the server
            # will parse, rather than assembling a raw dict by hand.
            msg = RunRequest(
                id=rid,
                spec=spec,
                root_seed=int(root_seed),
                deadline_ms=deadline_ms,
                mode=mode,
                timeout_s=timeout_s,
            ).to_wire()
        else:
            msg = {
                "op": "run",
                "id": rid,
                "spec": spec,
                "root_seed": int(root_seed),
                "mode": mode,
            }
            if deadline_ms is not None:
                msg["deadline_ms"] = deadline_ms
            if timeout_s is not None:
                msg["timeout_s"] = timeout_s
        return await self.request(msg, timeout_s=timeout_s)

    async def health(self) -> dict[str, Any]:
        return await self.request({"op": "health", "id": "health"})

    async def stats(self) -> dict[str, Any]:
        return await self.request({"op": "stats", "id": "stats"})

    async def shutdown(self) -> dict[str, Any]:
        return await self.request({"op": "shutdown", "id": "shutdown"})


# The wire-format spec builder now lives with the rest of the schema in
# ``repro.service.protocol``; this alias keeps the historical private
# import path (e.g. older embedding code) working.
_spec_payload = spec_payload


# ----------------------------------------------------------------------
# Load generation
# ----------------------------------------------------------------------


@dataclass
class LoadgenConfig:
    """What to throw at the server, and how hard."""

    workload: str = "chain-bundle"
    workload_params: dict[str, Any] = field(default_factory=dict)
    simulator: str = "wormhole"
    channels: tuple[int, ...] = (1, 2, 4)
    message_length: int | None = None
    #: Cycle several simulators / message lengths across the request
    #: stream (empty = just ``simulator`` / ``message_length``).  Each
    #: distinct (simulator, length) pair is its own batch-compat key,
    #: so this is how loadgen produces *multi-key* traffic — the kind a
    #: sharded cluster can actually spread across workers.
    simulators: tuple[str, ...] = ()
    lengths: tuple[int | None, ...] = ()
    requests: int = 32
    concurrency: int = 8
    #: Aggregate request rate in req/s; 0 = as fast as possible.
    rate: float = 0.0
    root_seed: int = 0
    deadline_ms: float | None = None
    #: Execution mode stamped on every run request: ``"exact"`` runs
    #: trials through the batcher, ``"estimate"`` exercises the
    #: closed-form envelope tier (verification then compares against a
    #: local :func:`repro.analysis.estimate.estimate_spec` call, which
    #: must be bit-stable with what the service returned).
    mode: str = MODE_EXACT
    #: Replay a registered adversarial scenario (``repro.scenarios``)
    #: instead of ``workload``: trial-shaped scenarios substitute their
    #: ``scenario:<name>`` sweep workload; arrival-trace scenarios keep
    #: ``workload`` but pace the request stream to the scenario's
    #: per-step rate trace (see :meth:`arrival_offsets`).
    scenario: str | None = None
    #: Replay every accepted response against a serial run and compare.
    verify: bool = True
    #: Send a ``shutdown`` op once the run (and verification) is done.
    shutdown: bool = False
    connect_timeout_s: float = 5.0

    def effective_workload(self) -> str:
        if self.scenario is not None and self._scenario().kind != "continuous":
            return f"scenario:{self.scenario}"
        return self.workload

    def _scenario(self):
        from ..scenarios import get_scenario

        return get_scenario(self.scenario)

    def specs(self) -> list[TrialSpec]:
        """One unique spec per request.

        Channels cycle fastest, then (simulator, length) pairs, then
        the repeat counter advances — so with the default single
        simulator/length the stream is exactly the classic
        channels-cycle/repeats-advance order, and with several pairs
        every compat key sees the full channel rotation.
        """
        workload = self.effective_workload()
        sims = self.simulators or (self.simulator,)
        lens = self.lengths or (self.message_length,)
        pairs = [(sim, length) for sim in sims for length in lens]
        specs = []
        for i in range(self.requests):
            sim, length = pairs[(i // len(self.channels)) % len(pairs)]
            specs.append(
                TrialSpec.make(
                    workload,
                    sim,
                    B=self.channels[i % len(self.channels)],
                    workload_params=self.workload_params,
                    message_length=length,
                    repeat=i // (len(self.channels) * len(pairs)),
                )
            )
        return specs

    def arrival_offsets(self) -> list[float] | None:
        """Per-request send offsets (seconds) from an arrival scenario.

        ``None`` unless ``scenario`` names a continuous-kind scenario.
        The scenario's per-step rate trace becomes a cumulative arrival
        curve; request ``i`` is placed where the curve crosses
        ``(i + 0.5) / requests`` of its total mass, so bursts in the
        trace become bursts on the wire.  One trace *step* maps to
        ``1 / rate`` seconds when ``rate`` is set, else 10 ms.
        """
        if self.scenario is None:
            return None
        scen = self._scenario()
        if scen.kind != "continuous":
            return None
        import numpy as np

        case = scen.build_case(B=self.channels[0], **self.workload_params)
        rates = np.asarray(case.rate, dtype=np.float64)
        cum = np.cumsum(rates)
        if cum[-1] <= 0:
            return [0.0] * self.requests
        targets = (np.arange(self.requests) + 0.5) * cum[-1] / self.requests
        steps = np.searchsorted(cum, targets)
        step_s = (1.0 / self.rate) if self.rate > 0 else 0.01
        return [float(s) * step_s for s in steps]


async def run_loadgen(
    host: str, port: int, config: LoadgenConfig
) -> dict[str, Any]:
    """Drive a running server; return the ``BENCH_service.json`` payload.

    Opens ``concurrency`` connections, issues ``requests`` unique trial
    requests across them (paced to ``rate`` req/s when set), measures
    client-side latency, fetches the server's ``stats`` snapshot, and —
    unless ``verify`` is off — checks every accepted response
    bit-identical against a local serial replay.
    """
    specs = config.specs()
    offsets = config.arrival_offsets()
    started = time.monotonic()
    work = asyncio.Queue()
    for i, spec in enumerate(specs):
        work.put_nowait((i, spec))
    send_times: list[float | None] = [None] * len(specs)
    responses: list[dict[str, Any] | None] = [None] * len(specs)
    latencies: list[float] = []

    def _pace(i: int) -> float:
        """Seconds from start at which request ``i`` may be sent."""
        if offsets is not None:
            return offsets[i]
        return i / config.rate if config.rate > 0 else 0.0

    async def worker() -> None:
        client = await ServiceClient.connect(
            host, port, retry_for_s=config.connect_timeout_s
        )
        try:
            while True:
                try:
                    i, spec = work.get_nowait()
                except asyncio.QueueEmpty:
                    return
                delay = started + _pace(i) - time.monotonic()
                if delay > 0:
                    await asyncio.sleep(delay)
                t0 = time.monotonic()
                send_times[i] = t0
                try:
                    responses[i] = await client.run_trial(
                        spec,
                        root_seed=config.root_seed,
                        deadline_ms=config.deadline_ms,
                        req_id=f"lg{i}",
                        mode=config.mode,
                    )
                except ServiceConnectionError as exc:
                    # Attribute the loss instead of crashing the run,
                    # then reconnect for the remaining requests.
                    responses[i] = {
                        "id": f"lg{i}",
                        "status": "connection_error",
                        "error": str(exc),
                    }
                    await client.close()
                    client = await ServiceClient.connect(
                        host, port, retry_for_s=config.connect_timeout_s
                    )
                latencies.append(time.monotonic() - t0)
        finally:
            await client.close()

    workers = [
        asyncio.create_task(worker())
        for _ in range(max(1, config.concurrency))
    ]
    await asyncio.gather(*workers)
    wall_s = time.monotonic() - started

    status_counts: dict[str, int] = {}
    for resp in responses:
        status = resp.get("status", "missing") if resp else "missing"
        status_counts[status] = status_counts.get(status, 0) + 1
    ok = status_counts.get(STATUS_OK, 0)

    mismatches: list[str] = []
    verified = 0
    if config.verify:
        for i, (spec, resp) in enumerate(zip(specs, responses)):
            if not resp or resp.get("status") != STATUS_OK:
                continue
            if config.mode == "estimate":
                # Estimates are deterministic closed forms of the spec:
                # the oracle is the local estimator, not a serial replay.
                from ..analysis.estimate import estimate_spec

                local = estimate_spec(spec).to_metrics()
                oracle = "local estimate"
            else:
                local, _ = _execute_trial((spec, config.root_seed))
                oracle = "serial replay"
            verified += 1
            if resp["metrics"] != local:
                mismatches.append(
                    f"request lg{i} ({spec.label()}): served "
                    f"{resp['metrics']} != {oracle} {local}"
                )

    server_stats: dict[str, Any] | None = None
    try:
        async with await ServiceClient.connect(host, port) as client:
            server_stats = await client.stats()
            if config.shutdown:
                await client.shutdown()
    except (OSError, ConnectionError, ProtocolError):
        pass  # server already gone; report client-side numbers only

    batch_sizes = [
        r["batched"] for r in responses if r and r.get("status") == STATUS_OK
    ]
    lat_ms = sorted(lat * 1000.0 for lat in latencies)

    def q(fraction: float) -> float:
        from ..telemetry.metrics import quantile

        return round(quantile(lat_ms, fraction), 3)

    return {
        "config": {
            "workload": config.effective_workload(),
            "scenario": config.scenario,
            "workload_params": dict(config.workload_params),
            "simulator": config.simulator,
            "simulators": list(config.simulators),
            "lengths": list(config.lengths),
            "channels": list(config.channels),
            "message_length": config.message_length,
            "requests": config.requests,
            "concurrency": config.concurrency,
            "rate_rps": config.rate,
            "root_seed": config.root_seed,
            "deadline_ms": config.deadline_ms,
            "mode": config.mode,
        },
        "wall_s": round(wall_s, 4),
        "throughput_rps": round(len(latencies) / wall_s, 2) if wall_s else 0.0,
        "statuses": status_counts,
        "ok": ok,
        "latency_ms": {
            "count": len(lat_ms),
            "mean": round(sum(lat_ms) / len(lat_ms), 3) if lat_ms else 0.0,
            "p50": q(0.50),
            "p95": q(0.95),
            "p99": q(0.99),
            "max": round(lat_ms[-1], 3) if lat_ms else 0.0,
        },
        "client_mean_batch": (
            round(sum(batch_sizes) / len(batch_sizes), 3)
            if batch_sizes
            else 0.0
        ),
        "verified": verified,
        "mismatches": mismatches,
        "bit_exact": (not mismatches) if config.verify else None,
        "server": server_stats,
    }
