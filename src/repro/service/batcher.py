"""Dynamic request batching: coalesce compatible trials into lockstep runs.

The batcher is the service's continuous-batching engine, the same shape
inference servers use.  One asyncio task loops forever:

1. wait for the admission queue to be non-empty;
2. take the *oldest* request's compatibility key
   (:func:`repro.sim.batch.batch_compat_key` — shared verbatim with the
   sweep packer, so offline and online batching can never disagree on
   what "compatible" means) and hold a coalescing window open: dispatch
   as soon as ``max_batch`` compatible requests are queued, or when
   ``max_wait_ms`` has passed since the oldest request was admitted,
   whichever comes first.  While a previous batch is still executing,
   new arrivals accumulate in the queue, so under load the window never
   adds latency — the next batch fills "for free";
3. take the compatible requests out of the queue, drop any whose
   deadline expired while queued (they get ``deadline_exceeded``
   responses — cancellation before compute is wasted on them), and run
   the rest through the configured :mod:`repro.exec` backend: one
   lockstep ``run_*_batch`` call for trials of any flit-level router
   (:data:`repro.sim.batch.BATCHED_MODELS` — mixed ``B`` / seeds /
   root seeds in one grid), the sweep's per-trial path for everything
   else (the ``schedule`` pipeline and singleton groups).

The batcher never blocks the event loop: a single dispatch thread hosts
the backend's (blocking, fault-tolerant) ``run`` call, so batches
execute in admission order whatever the substrate.  With the
:class:`~repro.exec.process.ProcessPoolBackend` the compute itself
leaves the server process — worker crashes are retried and the pool
restarted without any admitted request being dropped, and after
repeated failures the backend degrades to in-process execution rather
than going dark.

Because every trial's seed derives from ``(spec, root_seed)`` exactly
as in :func:`repro.sim.sweep.trial_seed` and the lockstep engine is
bit-identical to serial runs per trial, the *composition* of a batch
can never change a response: any interleaving of concurrent clients
yields byte-identical metrics.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

from ..sim.batch import batch_compat_key
from ..sim.sweep import (
    _BATCH_SIMULATORS,
    TrialSpec,
    _build_workload,
    _execute_trial,
    _run_batch_model,
    _sim_seed,
    trial_seed,
)
from .admission import AdmissionQueue, PendingRequest
from .protocol import error_response, expired_response, ok_response

__all__ = ["BatchPolicy", "DynamicBatcher", "execute_compatible"]


@dataclass(frozen=True)
class BatchPolicy:
    """When a coalescing window closes.

    ``max_batch`` caps trials per lockstep call; ``max_wait_ms`` caps
    how long the *oldest* queued request may wait for company before its
    batch launches anyway.
    """

    max_batch: int = 32
    max_wait_ms: float = 2.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ValueError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}"
            )


def execute_compatible(
    items: list[tuple[TrialSpec, int]],
) -> list[dict[str, Any]]:
    """Run compatible ``(spec, root_seed)`` trials; metrics in input order.

    All items must share :func:`batch_compat_key`.  Trials of any
    batch-capable simulator (every flit-level router — see
    :data:`repro.sim.batch.BATCHED_MODELS`) run as one lockstep batch
    (per-item seeds derived exactly as the sweep does, so mixed root
    seeds are fine); other simulators, and singleton groups, take the
    sweep's per-trial path.  Either way the metrics are bit-identical
    to a serial replay of each item.
    """
    spec0 = items[0][0]
    if len(items) == 1 or spec0.simulator not in _BATCH_SIMULATORS:
        return [_execute_trial(item)[0] for item in items]
    wl = _build_workload(spec0.workload, spec0.workload_params)
    L = (
        wl.default_length
        if spec0.message_length is None
        else spec0.message_length
    )
    sp = dict(spec0.sim_params)
    seeds = [
        _sim_seed(dict(spec.sim_params), trial_seed(spec, root_seed))
        for spec, root_seed in items
    ]
    return _run_batch_model(
        spec0.simulator, wl, L, sp, seeds, [spec.B for spec, _ in items]
    )


class DynamicBatcher:
    """The coalesce/dispatch loop over an :class:`AdmissionQueue`."""

    def __init__(
        self,
        queue: AdmissionQueue,
        policy: BatchPolicy,
        *,
        stats=None,
        backend=None,
        own_backend: bool = True,
    ) -> None:
        from ..exec import InlineBackend

        self._queue = queue
        self._policy = policy
        self._stats = stats
        self.backend = backend if backend is not None else InlineBackend()
        self._own_backend = own_backend if backend is not None else True
        # One dispatch thread: batches execute in admission order, the
        # shared per-process workload memo is never touched concurrently,
        # and the backend's blocking run() stays off the event loop.
        self._dispatch = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-batch"
        )
        self._draining = False
        self.in_flight = 0
        self.batches_executed = 0

    @staticmethod
    def compat_key(spec: TrialSpec) -> tuple:
        """The batch-compatibility key (shared with the sweep packer)."""
        return batch_compat_key(spec)

    def begin_drain(self) -> None:
        """Stop after the queue empties; wake the loop if it's waiting."""
        self._draining = True
        self._queue.kick()

    async def run(self) -> None:
        """Serve batches until drained; returns with nothing in flight."""
        loop = asyncio.get_running_loop()
        try:
            while True:
                if not len(self._queue):
                    if self._draining:
                        return
                    await self._queue.wait_arrival()
                    continue
                await self._coalesce(loop)
                batch = self._take_batch(loop)
                if batch:
                    await self._dispatch_batch(loop, batch)
        finally:
            self._dispatch.shutdown(wait=True)
            if self._own_backend:
                self.backend.close()

    # ------------------------------------------------------------------
    async def _coalesce(self, loop) -> None:
        """Hold the window open until the batch fills or the wait expires.

        The window is anchored at the *oldest* request's admission time,
        so time spent queued behind an executing batch counts toward it
        — a full queue dispatches immediately.  Draining skips the wait
        entirely: shutdown flushes with whatever is already queued.
        """
        first = self._queue.peek()
        window_closes = first.enqueued_at + self._policy.max_wait_ms / 1000.0
        while not self._draining:
            if self._queue.count_compatible(first.key) >= self._policy.max_batch:
                return
            remaining = window_closes - loop.time()
            if remaining <= 0:
                return
            await self._queue.wait_arrival(remaining)

    def _take_batch(self, loop) -> list[PendingRequest]:
        """Pull the dispatchable batch; expire stale requests in passing."""
        first = self._queue.peek()
        taken = self._queue.take_compatible(first.key, self._policy.max_batch)
        now = loop.time()
        live: list[PendingRequest] = []
        for p in taken:
            if p.expired(now):
                self._resolve(
                    p,
                    expired_response(
                        p.request.id,
                        waited_ms=(now - p.enqueued_at) * 1000.0,
                    ),
                )
                if self._stats is not None:
                    self._stats.note_expired()
            else:
                live.append(p)
        return live

    async def _dispatch_batch(self, loop, batch: list[PendingRequest]) -> None:
        items = [(p.request.spec, p.request.root_seed) for p in batch]
        self.in_flight = len(batch)
        started = loop.time()
        try:
            metrics = await loop.run_in_executor(
                self._dispatch, self.backend.run, execute_compatible, items
            )
        except Exception as exc:  # noqa: BLE001 - reported to the client
            for p in batch:
                self._resolve(
                    p,
                    error_response(
                        p.request.id, f"trial execution failed: {exc}"
                    ),
                )
            if self._stats is not None:
                self._stats.note_errors(len(batch))
            return
        finally:
            elapsed = loop.time() - started
            self.in_flight = 0
            self.batches_executed += 1
            self._queue.note_service_time(elapsed, len(batch) or 1)
        now = loop.time()
        for p, m in zip(batch, metrics):
            queued_for = started - p.enqueued_at
            self._resolve(
                p,
                ok_response(
                    p.request.id,
                    m,
                    batched=len(batch),
                    queue_ms=queued_for * 1000.0,
                ),
            )
            if self._stats is not None:
                self._stats.note_completed(
                    latency_s=now - p.enqueued_at, batch_size=len(batch)
                )
        if self._stats is not None:
            self._stats.note_batch(len(batch))

    @staticmethod
    def _resolve(pending: PendingRequest, response: dict[str, Any]) -> None:
        if not pending.future.done():
            pending.future.set_result(response)
