"""The asyncio TCP server: acceptor, admission, stats, graceful drain.

:class:`SimulationService` ties the pieces together:

* an ``asyncio.start_server`` acceptor reading newline-delimited JSON
  (:mod:`repro.service.protocol`) — one in-flight ``run`` per
  connection (clients open several connections for concurrency, as
  ``repro loadgen`` does);
* a bounded :class:`~repro.service.admission.AdmissionQueue` — a full
  queue answers ``rejected`` with a ``retry_after_ms`` drain estimate
  instead of queueing unboundedly;
* the :class:`~repro.service.batcher.DynamicBatcher` coalescing
  compatible requests into lockstep batches;
* :class:`ServiceStats` — :mod:`repro.telemetry.metrics` collectors
  (request counters, queue-depth gauge, batch-occupancy histogram,
  latency quantiles) behind the ``health`` / ``stats`` endpoints.

Graceful shutdown (``shutdown`` op, or SIGINT/SIGTERM under ``repro
serve``) follows the drain discipline: stop accepting connections,
reject new ``run`` admissions with a ``draining`` backpressure
response, let the batcher flush every queued and in-flight request,
wait until every response has been written, then close.  No admitted
request is ever dropped or answered partially.
"""

from __future__ import annotations

import asyncio
import contextlib
from dataclasses import dataclass
from typing import Any

from ..telemetry.metrics import (
    DepthGauge,
    EventCounter,
    LatencyRecorder,
    SizeHistogram,
)
from .admission import AdmissionQueue, PendingRequest, QueueFullError
from .batcher import BatchPolicy, DynamicBatcher, batch_compat_key
from .protocol import (
    MODE_ESTIMATE,
    PROTOCOL_VERSION,
    ProtocolError,
    RunRequest,
    UnknownModeError,
    UnsupportedVersionError,
    check_version,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    parse_run_request,
    reject_response,
    unknown_mode_response,
    unsupported_version_response,
)

__all__ = ["ServiceConfig", "ServiceStats", "SimulationService", "serve"]

MAX_LINE_BYTES = 1 << 20


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one service instance.

    This is the one config schema shared by the server, the ``repro
    serve`` CLI, and embedding tests: execution substrate
    (``backend``/``workers``/``batch_timeout_s``) rides next to
    batching policy (``max_batch``/``max_wait_ms``) and admission
    (``queue_limit``), so the two axes are configured together but
    vary independently.
    """

    host: str = "127.0.0.1"
    port: int = 7654
    queue_limit: int = 64
    max_batch: int = 32
    max_wait_ms: float = 2.0
    #: Backpressure hint attached to ``draining`` rejects.
    drain_retry_after_ms: float = 1000.0
    #: Execution substrate for batch compute: ``"inline"`` (event-loop
    #: adjacent dispatch thread), ``"thread"`` (worker thread pool), or
    #: ``"process"`` (fault-tolerant worker processes).
    backend: str = "thread"
    #: Pool width for thread/process backends.
    workers: int = 2
    #: Optional per-batch wall-clock budget (process backend only); a
    #: stalled worker is terminated and the batch retried.
    batch_timeout_s: float | None = None
    #: Write the bound port here (atomically) once listening.  With
    #: ``port=0`` the OS picks an ephemeral port; the port file is how
    #: a supervisor (``repro.cluster``) learns which one.
    port_file: str | None = None
    #: Estimator-driven admission control: wall milliseconds one
    #: simulated flit step costs on this host.  When set, an exact run
    #: request carrying a ``deadline_ms`` is pre-screened against the
    #: analytic *lower* envelope (:mod:`repro.analysis.estimate`) —
    #: if even the optimistic ``lower * step_cost_ms`` floor exceeds
    #: the deadline, the request is rejected ``infeasible_deadline``
    #: before it ever queues.  ``None`` disables the screen.  Calibrate
    #: from ``BENCH_estimate.json`` (exact latency / simulated steps).
    step_cost_ms: float | None = None

    def policy(self) -> BatchPolicy:
        return BatchPolicy(max_batch=self.max_batch, max_wait_ms=self.max_wait_ms)

    def make_backend(self):
        """Build the configured :mod:`repro.exec` backend instance."""
        from ..exec import BACKENDS, create_backend

        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; choose from "
                f"{', '.join(BACKENDS)}"
            )
        options = {}
        if self.backend == "process" and self.batch_timeout_s is not None:
            options["timeout_s"] = self.batch_timeout_s
        return create_backend(self.backend, workers=self.workers, **options)


class ServiceStats:
    """Cross-request service metrics, snapshot-ready for ``stats``.

    Counter schema (shared verbatim by the cluster router's
    :class:`~repro.cluster.router.RouterStats` where the concepts
    overlap, and merged with :meth:`repro.cache.ResultCache.snapshot`'s
    ``cache_*`` keys and the exec backends' ``worker_restarts``):
    ``requests_total`` admissions attempted, ``completed`` answered
    ``ok`` (exact and estimate alike; ``estimated`` sub-counts the
    estimate fast path), ``rejected_*`` one key per reject reason,
    ``deadline_expired``, ``errors``, ``protocol_errors``.
    """

    def __init__(self) -> None:
        self.counters = EventCounter(
            "requests_total",
            "completed",
            "estimated",
            "rejected_queue_full",
            "rejected_draining",
            "rejected_infeasible",
            "deadline_expired",
            "errors",
            "protocol_errors",
        )
        self.queue_depth = DepthGauge()
        self.batches = SizeHistogram()
        self.latency = LatencyRecorder()

    # -- batcher callbacks --------------------------------------------
    def note_completed(self, *, latency_s: float, batch_size: int) -> None:
        self.counters.bump("completed")
        self.latency.record(latency_s)

    def note_batch(self, size: int) -> None:
        if size:
            self.batches.record(size)

    def note_expired(self) -> None:
        self.counters.bump("deadline_expired")

    def note_errors(self, n: int) -> None:
        self.counters.bump("errors", n)

    # ------------------------------------------------------------------
    def snapshot(
        self, *, draining: bool, uptime_s: float, queue: AdmissionQueue,
        in_flight: int, exec_stats: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        self.queue_depth.set(len(queue))
        return {
            "status": "draining" if draining else "ok",
            "protocol": PROTOCOL_VERSION,
            "uptime_s": round(uptime_s, 3),
            "queue": {**self.queue_depth.snapshot(), "limit": queue.limit},
            "in_flight": in_flight,
            "counters": self.counters.snapshot(),
            "batches": self.batches.snapshot(),
            "latency_ms": self.latency.summary(),
            "exec": exec_stats or {},
        }


class SimulationService:
    """One service instance: call :meth:`run` (blocks until drained)."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.stats = ServiceStats()
        self.queue = AdmissionQueue(self.config.queue_limit)
        self.backend = self.config.make_backend()
        self.batcher = DynamicBatcher(
            self.queue,
            self.config.policy(),
            stats=self.stats,
            backend=self.backend,
        )
        self.started = asyncio.Event()
        self.port: int | None = None
        self._shutdown = asyncio.Event()
        self._draining = False
        self._writers: set[asyncio.StreamWriter] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._responses_pending = 0
        self._all_flushed = asyncio.Event()
        self._all_flushed.set()
        self._started_at: float | None = None

    # -- lifecycle -----------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    def request_shutdown(self) -> None:
        """Begin the graceful drain (idempotent, callable from signals)."""
        self._draining = True
        self._shutdown.set()
        self.batcher.begin_drain()

    async def run(self) -> None:
        """Listen, serve, drain; returns once fully shut down."""
        loop = asyncio.get_running_loop()
        self._started_at = loop.time()
        batcher_task = asyncio.create_task(
            self.batcher.run(), name="repro-batcher"
        )
        server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=MAX_LINE_BYTES,
        )
        self.port = server.sockets[0].getsockname()[1]
        if self.config.port_file:
            self._write_port_file(self.config.port_file, self.port)
        self.started.set()
        try:
            await self._shutdown.wait()
        finally:
            self.request_shutdown()
            # 1. Stop accepting new connections.
            server.close()
            await server.wait_closed()
            # 2. Drain: the batcher flushes every queued + in-flight
            #    request (admissions are already rejected as draining).
            await batcher_task
            # 3. Wait until every resolved response has been written.
            await self._all_flushed.wait()
            # 4. Close lingering connections; handlers exit on EOF.
            for writer in list(self._writers):
                writer.close()
            if self._conn_tasks:
                await asyncio.gather(
                    *self._conn_tasks, return_exceptions=True
                )

    @staticmethod
    def _write_port_file(path: str, port: int) -> None:
        """Atomic write so a polling supervisor never reads a torn file."""
        import os

        tmp = f"{path}.tmp{os.getpid()}"
        with open(tmp, "w") as handle:
            handle.write(f"{port}\n")
        os.replace(tmp, path)

    # -- connection handling -------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                ):
                    break
                if not line:
                    break
                await self._handle_line(line, writer)
        except ConnectionResetError:
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _handle_line(
        self, line: bytes, writer: asyncio.StreamWriter
    ) -> None:
        try:
            msg = decode_message(line)
        except ProtocolError as exc:
            self.stats.counters.bump("protocol_errors")
            await self._send(writer, error_response(None, str(exc)))
            return
        op = msg.get("op")
        req_id = msg.get("id") if isinstance(msg.get("id"), str) else ""
        try:
            check_version(msg)
        except UnsupportedVersionError as exc:
            self.stats.counters.bump("protocol_errors")
            await self._send(
                writer, unsupported_version_response(req_id, exc.got)
            )
            return
        if op == "run":
            await self._handle_run(msg, writer)
        elif op == "health":
            await self._send(
                writer, {"v": PROTOCOL_VERSION, "id": req_id, **self._health()}
            )
        elif op == "stats":
            await self._send(
                writer,
                {"v": PROTOCOL_VERSION, "id": req_id, **self._stats_snapshot()},
            )
        elif op == "shutdown":
            await self._send(
                writer,
                {
                    "v": PROTOCOL_VERSION,
                    "id": req_id,
                    "status": "ok",
                    "draining": True,
                },
            )
            self.request_shutdown()
        else:
            self.stats.counters.bump("protocol_errors")
            await self._send(
                writer, error_response(req_id, f"unknown op {op!r}")
            )

    async def _handle_run(
        self, msg: dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        loop = asyncio.get_running_loop()
        self.stats.counters.bump("requests_total")
        try:
            request = parse_run_request(msg)
        except UnknownModeError as exc:
            self.stats.counters.bump("protocol_errors")
            await self._send(
                writer, unknown_mode_response(msg.get("id"), exc.got)
            )
            return
        except ProtocolError as exc:
            self.stats.counters.bump("protocol_errors")
            await self._send(writer, error_response(msg.get("id"), str(exc)))
            return
        if request.mode == MODE_ESTIMATE:
            # Estimates are closed-form and never touch the queue or the
            # batcher, so — like health/stats — they are served even
            # while draining.
            await self._send(writer, self._estimate_response(request, loop))
            return
        infeasible = self._infeasible_floor_ms(request)
        if infeasible is not None:
            self.stats.counters.bump("rejected_infeasible")
            await self._send(
                writer,
                reject_response(
                    request.id,
                    "infeasible_deadline",
                    retry_after_ms=infeasible,
                ),
            )
            return
        if self._draining:
            self.stats.counters.bump("rejected_draining")
            await self._send(
                writer,
                reject_response(
                    request.id,
                    "draining",
                    retry_after_ms=self.config.drain_retry_after_ms,
                ),
            )
            return
        now = loop.time()
        pending = PendingRequest(
            request=request,
            key=batch_compat_key(request.spec),
            batchable=True,
            enqueued_at=now,
            expires_at=(
                None
                if request.deadline_ms is None
                else now + request.deadline_ms / 1000.0
            ),
            future=loop.create_future(),
        )
        try:
            self.queue.admit(pending)
        except QueueFullError as exc:
            self.stats.counters.bump("rejected_queue_full")
            await self._send(
                writer,
                reject_response(
                    request.id,
                    "queue full",
                    retry_after_ms=exc.retry_after_ms,
                ),
            )
            return
        self.stats.queue_depth.set(len(self.queue))
        self._responses_pending += 1
        self._all_flushed.clear()
        try:
            response = await pending.future
            await self._send(writer, response)
        finally:
            self._responses_pending -= 1
            if self._responses_pending == 0:
                self._all_flushed.set()

    def _estimate_response(
        self, request: RunRequest, loop: asyncio.AbstractEventLoop
    ) -> dict[str, Any]:
        """Answer an estimate request synchronously from closed form."""
        from ..analysis.estimate import estimate_spec
        from ..network.graph import NetworkError

        start = loop.time()
        try:
            metrics = estimate_spec(request.spec).to_metrics()
        except NetworkError as exc:
            self.stats.counters.bump("errors")
            return error_response(request.id, str(exc))
        self.stats.counters.bump("estimated")
        self.stats.note_completed(
            latency_s=loop.time() - start, batch_size=0
        )
        return ok_response(
            request.id,
            metrics,
            batched=0,
            queue_ms=0.0,
            mode=MODE_ESTIMATE,
        )

    def _infeasible_floor_ms(self, request: RunRequest) -> float | None:
        """The minimum feasible deadline, when the request's own one is
        provably too small (estimator-driven admission control).

        Returns ``None`` when the screen is off (no ``step_cost_ms``),
        the request carries no deadline, the spec has no envelope, or
        the deadline is feasible.  Uses the *lower* envelope: rejection
        only when even a contention-free run could not finish in time.
        """
        if self.config.step_cost_ms is None or request.deadline_ms is None:
            return None
        from ..analysis.estimate import estimate_spec
        from ..network.graph import NetworkError

        try:
            envelope = estimate_spec(request.spec)
        except NetworkError:
            return None  # not estimable (e.g. schedule): admit normally
        lower = envelope.lower
        if lower is None:  # adaptive: fall back to the per-message floor
            lower = max(envelope.per_message_lower, default=0)
        floor_ms = lower * self.config.step_cost_ms
        if floor_ms <= request.deadline_ms:
            return None
        return floor_ms

    async def _send(
        self, writer: asyncio.StreamWriter, msg: dict[str, Any]
    ) -> None:
        try:
            writer.write(encode_message(msg))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, RuntimeError):
            pass  # client went away; the drain ledger still balances

    # -- introspection endpoints ---------------------------------------
    def _uptime(self) -> float:
        if self._started_at is None:
            return 0.0
        return asyncio.get_running_loop().time() - self._started_at

    def _health(self) -> dict[str, Any]:
        exec_stats = self.backend.stats_snapshot()
        return {
            "status": "draining" if self._draining else "ok",
            "protocol": PROTOCOL_VERSION,
            "uptime_s": round(self._uptime(), 3),
            "queue_depth": len(self.queue),
            "in_flight": self.batcher.in_flight,
            "backend": exec_stats["backend"],
            "backend_mode": exec_stats["mode"],
            "worker_restarts": exec_stats["worker_restarts"],
        }

    def _stats_snapshot(self) -> dict[str, Any]:
        return self.stats.snapshot(
            draining=self._draining,
            uptime_s=self._uptime(),
            queue=self.queue,
            in_flight=self.batcher.in_flight,
            exec_stats=self.backend.stats_snapshot(),
        )


async def serve(config: ServiceConfig | None = None, *, quiet: bool = False) -> None:
    """Run a service until SIGINT/SIGTERM (or a ``shutdown`` op), then drain."""
    import signal

    service = SimulationService(config)
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(sig, service.request_shutdown)
    runner = asyncio.create_task(service.run())
    await service.started.wait()
    if not quiet:
        cfg = service.config
        print(
            f"repro service listening on {cfg.host}:{service.port} "
            f"(queue limit {cfg.queue_limit}, max batch {cfg.max_batch}, "
            f"max wait {cfg.max_wait_ms} ms, backend {cfg.backend}"
            + (
                f" x{cfg.workers}"
                if cfg.backend in ("thread", "process")
                else ""
            )
            + ")",
            flush=True,
        )
    await runner
    if not quiet:
        counters = service.stats.counters
        print(
            f"repro service drained: {counters['completed']} completed, "
            f"{counters['rejected_queue_full']} queue-full rejects, "
            f"{counters['deadline_expired']} expired",
            flush=True,
        )
