"""The newline-delimited-JSON wire protocol of the simulation service.

One request or response per line, UTF-8 JSON, ``\\n``-terminated — the
framing every language can speak with a socket and a JSON parser, and
the one that keeps the asyncio server to ``readline()`` / ``write()``.

The protocol is versioned: every request and response carries
``"v": 1`` (:data:`PROTOCOL_VERSION`).  A request may omit ``v`` —
version-1 clients predate the field — but a request carrying an
*unknown* version is rejected with a structured ``error`` response
naming the supported version, so a future v2 client failing against a
v1 server sees exactly why instead of a confusing spec error.

Requests are ``{"op": ..., "id": ..., "v": 1}`` objects:

``run``
    Execute one trial.  Carries a ``spec`` (the :class:`~repro.sim
    .sweep.TrialSpec` identity fields: ``workload``, ``simulator``,
    ``B``, ``workload_params``, ``sim_params``, ``message_length``,
    ``repeat``), a ``root_seed``, an optional ``deadline_ms`` (maximum
    queueing delay before the request is abandoned), an optional
    ``timeout_s`` (client-side transport patience, echoed so proxies
    can honor it), and a ``mode`` — one of :data:`RUN_MODES`.
    ``"exact"`` (the default) simulates; ``"estimate"`` answers from
    the analytic delay envelope (:mod:`repro.analysis.estimate`)
    without touching the batcher or the queue.  ``mode`` is a
    *request* property, not a spec field: it never enters the trial's
    identity, seed derivation, or cache key.  The exact trial's RNG
    seed derives from ``(spec, root_seed)`` exactly as in
    :func:`repro.sim.sweep.trial_seed`, so a response is bit-identical
    to the same spec run through ``run_sweep`` or a serial
    :class:`~repro.sim.wormhole.WormholeSimulator` replay; estimate
    responses are a pure function of the spec alone and therefore
    bit-stable across replicas.  A request carrying an unknown mode is
    answered with a structured ``error`` response listing
    ``supported_modes``.
``health`` / ``stats``
    Liveness and metrics snapshots (always served, even while draining).
``shutdown``
    Ask the server to drain gracefully: in-flight and queued requests
    finish, new admissions are rejected, then the server exits.

Responses carry ``status``:

``ok``
    ``metrics`` holds the trial metrics (same dict as the sweep path,
    including ``completion_digest``); ``batched`` reports how many
    trials shared the request's lockstep batch and ``queue_ms`` how
    long it waited for admission + batching.
``rejected``
    Admission backpressure (queue full, or draining).  ``error`` names
    the reason and ``retry_after_ms`` hints when to retry — the
    429-style contract.
``deadline_exceeded``
    The request's ``deadline_ms`` elapsed before its batch launched.
``error``
    Malformed request or execution failure; ``error`` has the message.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from ..network.graph import NetworkError
from ..sim.sweep import SIMULATORS, WORKLOADS, TrialSpec

__all__ = [
    "MODE_ESTIMATE",
    "MODE_EXACT",
    "PROTOCOL_VERSION",
    "RUN_MODES",
    "STATUS_ERROR",
    "STATUS_EXPIRED",
    "STATUS_OK",
    "STATUS_REJECTED",
    "ProtocolError",
    "RunRequest",
    "RunResponse",
    "UnknownModeError",
    "UnsupportedVersionError",
    "check_version",
    "decode_message",
    "encode_message",
    "error_response",
    "expired_response",
    "ok_response",
    "parse_run_request",
    "reject_response",
    "spec_payload",
    "unknown_mode_response",
    "unsupported_version_response",
]

PROTOCOL_VERSION = 1

MODE_EXACT = "exact"
MODE_ESTIMATE = "estimate"
#: Execution modes a v1 ``run`` request may carry (the facade's
#: ``simulate(mode=...)`` accepts the same names).
RUN_MODES = (MODE_EXACT, MODE_ESTIMATE)

STATUS_OK = "ok"
STATUS_REJECTED = "rejected"
STATUS_EXPIRED = "deadline_exceeded"
STATUS_ERROR = "error"

#: Ceiling on one encoded message (a line); guards the reader against
#: an endless unterminated line from a confused client.
MAX_LINE_BYTES = 1 << 20


class ProtocolError(ValueError):
    """A line that is not a valid protocol message."""


class UnsupportedVersionError(ProtocolError):
    """A message declaring a protocol version this server cannot speak."""

    def __init__(self, got: Any) -> None:
        super().__init__(
            f"unsupported protocol version {got!r}; this server speaks "
            f"v{PROTOCOL_VERSION}"
        )
        self.got = got


class UnknownModeError(ProtocolError):
    """A ``run`` request carrying a mode this server cannot execute."""

    def __init__(self, got: Any) -> None:
        super().__init__(
            f"unknown mode {got!r}; supported modes: {', '.join(RUN_MODES)}"
        )
        self.got = got


def check_version(msg: dict[str, Any]) -> int:
    """Validate a message's ``v`` field; returns the effective version.

    A missing ``v`` means version 1 (pre-versioning clients); anything
    other than :data:`PROTOCOL_VERSION` raises
    :class:`UnsupportedVersionError`.
    """
    v = msg.get("v", PROTOCOL_VERSION)
    if v != PROTOCOL_VERSION:
        raise UnsupportedVersionError(v)
    return v


def encode_message(msg: dict[str, Any]) -> bytes:
    """One message as a compact, newline-terminated JSON line."""
    return json.dumps(msg, sort_keys=True, separators=(",", ":")).encode() + b"\n"


def decode_message(line: bytes | str) -> dict[str, Any]:
    """Parse one line into a message dict, or raise :class:`ProtocolError`."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"message is not UTF-8: {exc}") from None
    line = line.strip()
    if not line:
        raise ProtocolError("empty message line")
    try:
        msg = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"message is not valid JSON: {exc}") from None
    if not isinstance(msg, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(msg).__name__}"
        )
    return msg


def spec_payload(spec: TrialSpec) -> dict[str, Any]:
    """A :class:`TrialSpec` as the wire-format ``spec`` object."""
    return {
        "workload": spec.workload,
        "simulator": spec.simulator,
        "B": spec.B,
        "workload_params": dict(spec.workload_params),
        "sim_params": dict(spec.sim_params),
        "message_length": spec.message_length,
        "repeat": spec.repeat,
    }


@dataclass(frozen=True)
class RunRequest:
    """A validated ``run`` request, ready for admission.

    This is the *one* run-request schema: the server parses wire
    messages into it, the cluster router re-serializes it with
    :meth:`to_wire` when forwarding to a shard, and the client builds
    it before encoding — nobody re-assembles raw dicts by hand.
    """

    id: str
    spec: TrialSpec
    root_seed: int
    deadline_ms: float | None = None
    mode: str = MODE_EXACT
    #: Client transport patience, echoed end-to-end so a proxy hop can
    #: bound its own wait on the upstream with the client's budget.
    timeout_s: float | None = None

    def to_wire(self) -> dict[str, Any]:
        """The request as a v1 ``run`` message (parse round-trips it)."""
        msg: dict[str, Any] = {
            "v": PROTOCOL_VERSION,
            "op": "run",
            "id": self.id,
            "spec": spec_payload(self.spec),
            "root_seed": int(self.root_seed),
            "mode": self.mode,
        }
        if self.deadline_ms is not None:
            msg["deadline_ms"] = float(self.deadline_ms)
        if self.timeout_s is not None:
            msg["timeout_s"] = float(self.timeout_s)
        return msg


@dataclass(frozen=True)
class RunResponse:
    """A structured run response, decoupled from the wire dict.

    ``status`` is one of the ``STATUS_*`` constants; the remaining
    fields mirror the response-builder keys (absent fields are
    ``None``).  :meth:`from_wire` is the one place response dicts are
    interpreted, so the router and client agree on every field.
    """

    id: str
    status: str
    metrics: dict[str, Any] | None = None
    mode: str = MODE_EXACT
    batched: int | None = None
    queue_ms: float | None = None
    error: str | None = None
    retry_after_ms: float | None = None
    waited_ms: float | None = None
    supported_modes: tuple[str, ...] | None = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @classmethod
    def from_wire(cls, msg: dict[str, Any]) -> "RunResponse":
        status = msg.get("status")
        if not isinstance(status, str):
            raise ProtocolError(f"response has no status: {msg!r}")
        metrics = msg.get("metrics")
        if metrics is not None and not isinstance(metrics, dict):
            raise ProtocolError("'metrics' must be an object")
        modes = msg.get("supported_modes")
        return cls(
            id=str(msg.get("id", "")),
            status=status,
            metrics=metrics,
            mode=str(msg.get("mode", MODE_EXACT)),
            batched=msg.get("batched"),
            queue_ms=msg.get("queue_ms"),
            error=msg.get("error"),
            retry_after_ms=msg.get("retry_after_ms"),
            waited_ms=msg.get("waited_ms"),
            supported_modes=None if modes is None else tuple(modes),
        )

    def to_wire(self) -> dict[str, Any]:
        msg: dict[str, Any] = {
            "v": PROTOCOL_VERSION,
            "id": self.id,
            "status": self.status,
        }
        if self.metrics is not None:
            msg["metrics"] = self.metrics
        if self.mode != MODE_EXACT:
            msg["mode"] = self.mode
        for key in ("batched", "queue_ms", "error", "retry_after_ms", "waited_ms"):
            value = getattr(self, key)
            if value is not None:
                msg[key] = value
        if self.supported_modes is not None:
            msg["supported_modes"] = list(self.supported_modes)
        return msg


def _require_int(msg: dict, key: str, default: int) -> int:
    value = msg.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"{key!r} must be an integer, got {value!r}")
    return value


def parse_run_request(msg: dict[str, Any]) -> RunRequest:
    """Validate a ``run`` message into a :class:`RunRequest`.

    Raises :class:`ProtocolError` on any malformed field; spec
    validation is delegated to :meth:`TrialSpec.make`, so the service
    and the sweep runner accept exactly the same grid cells.
    """
    req_id = msg.get("id")
    if req_id is None:
        req_id = ""
    if not isinstance(req_id, str):
        raise ProtocolError(f"'id' must be a string, got {req_id!r}")
    spec_dict = msg.get("spec")
    if not isinstance(spec_dict, dict):
        raise ProtocolError("'spec' must be an object with the trial fields")
    unknown = set(spec_dict) - {
        "workload",
        "simulator",
        "B",
        "workload_params",
        "sim_params",
        "message_length",
        "repeat",
    }
    if unknown:
        raise ProtocolError(f"unknown spec fields: {sorted(unknown)}")
    workload = spec_dict.get("workload")
    if workload not in WORKLOADS:
        raise ProtocolError(
            f"unknown workload {workload!r}; "
            f"registered: {', '.join(sorted(WORKLOADS))}"
        )
    simulator = spec_dict.get("simulator", "wormhole")
    if simulator not in SIMULATORS:
        raise ProtocolError(
            f"unknown simulator {simulator!r}; "
            f"registered: {', '.join(sorted(SIMULATORS))}"
        )
    try:
        spec = TrialSpec.make(
            workload,
            simulator,
            B=_require_int(spec_dict, "B", 1),
            workload_params=spec_dict.get("workload_params"),
            sim_params=spec_dict.get("sim_params"),
            message_length=spec_dict.get("message_length"),
            repeat=_require_int(spec_dict, "repeat", 0),
        )
    except (NetworkError, TypeError) as exc:
        raise ProtocolError(f"invalid spec: {exc}") from None
    root_seed = _require_int(msg, "root_seed", 0)
    deadline_ms = _optional_number(msg, "deadline_ms")
    timeout_s = _optional_number(msg, "timeout_s")
    mode = msg.get("mode", MODE_EXACT)
    if mode not in RUN_MODES:
        raise UnknownModeError(mode)
    return RunRequest(
        id=req_id,
        spec=spec,
        root_seed=root_seed,
        deadline_ms=deadline_ms,
        mode=mode,
        timeout_s=timeout_s,
    )


def _optional_number(msg: dict[str, Any], key: str) -> float | None:
    value = msg.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{key!r} must be a number, got {value!r}")
    if value < 0:
        raise ProtocolError(f"{key!r} must be >= 0")
    return float(value)


# ----------------------------------------------------------------------
# Response builders
# ----------------------------------------------------------------------


def ok_response(
    req_id: str,
    metrics: dict[str, Any],
    *,
    batched: int,
    queue_ms: float,
    mode: str = MODE_EXACT,
) -> dict[str, Any]:
    out = {
        "v": PROTOCOL_VERSION,
        "id": req_id,
        "status": STATUS_OK,
        "metrics": metrics,
        "batched": int(batched),
        "queue_ms": round(float(queue_ms), 3),
    }
    if mode != MODE_EXACT:
        out["mode"] = mode
    return out


def reject_response(
    req_id: str, reason: str, *, retry_after_ms: float
) -> dict[str, Any]:
    return {
        "v": PROTOCOL_VERSION,
        "id": req_id,
        "status": STATUS_REJECTED,
        "error": reason,
        "retry_after_ms": max(1, round(float(retry_after_ms))),
    }


def expired_response(req_id: str, *, waited_ms: float) -> dict[str, Any]:
    return {
        "v": PROTOCOL_VERSION,
        "id": req_id,
        "status": STATUS_EXPIRED,
        "error": "deadline expired before the request was dispatched",
        "waited_ms": round(float(waited_ms), 3),
    }


def error_response(req_id: str | None, message: str) -> dict[str, Any]:
    return {
        "v": PROTOCOL_VERSION,
        "id": req_id or "",
        "status": STATUS_ERROR,
        "error": message,
    }


def unknown_mode_response(req_id: str | None, got: Any) -> dict[str, Any]:
    """The structured reject for a ``run`` request with an unknown mode."""
    return {
        **error_response(
            req_id,
            f"unknown mode {got!r}; supported modes: {', '.join(RUN_MODES)}",
        ),
        "supported_modes": list(RUN_MODES),
    }


def unsupported_version_response(req_id: str | None, got: Any) -> dict[str, Any]:
    """The structured reject for a message with an unknown ``v``."""
    return {
        **error_response(
            req_id,
            f"unsupported protocol version {got!r}; this server speaks "
            f"v{PROTOCOL_VERSION}",
        ),
        "supported_versions": [PROTOCOL_VERSION],
    }
