"""The newline-delimited-JSON wire protocol of the simulation service.

One request or response per line, UTF-8 JSON, ``\\n``-terminated — the
framing every language can speak with a socket and a JSON parser, and
the one that keeps the asyncio server to ``readline()`` / ``write()``.

The protocol is versioned: every request and response carries
``"v": 1`` (:data:`PROTOCOL_VERSION`).  A request may omit ``v`` —
version-1 clients predate the field — but a request carrying an
*unknown* version is rejected with a structured ``error`` response
naming the supported version, so a future v2 client failing against a
v1 server sees exactly why instead of a confusing spec error.

Requests are ``{"op": ..., "id": ..., "v": 1}`` objects:

``run``
    Execute one trial.  Carries a ``spec`` (the :class:`~repro.sim
    .sweep.TrialSpec` identity fields: ``workload``, ``simulator``,
    ``B``, ``workload_params``, ``sim_params``, ``message_length``,
    ``repeat``), a ``root_seed``, and an optional ``deadline_ms``
    (maximum queueing delay before the request is abandoned).  The
    trial's RNG seed derives from ``(spec, root_seed)`` exactly as in
    :func:`repro.sim.sweep.trial_seed`, so a response is bit-identical
    to the same spec run through ``run_sweep`` or a serial
    :class:`~repro.sim.wormhole.WormholeSimulator` replay.
``health`` / ``stats``
    Liveness and metrics snapshots (always served, even while draining).
``shutdown``
    Ask the server to drain gracefully: in-flight and queued requests
    finish, new admissions are rejected, then the server exits.

Responses carry ``status``:

``ok``
    ``metrics`` holds the trial metrics (same dict as the sweep path,
    including ``completion_digest``); ``batched`` reports how many
    trials shared the request's lockstep batch and ``queue_ms`` how
    long it waited for admission + batching.
``rejected``
    Admission backpressure (queue full, or draining).  ``error`` names
    the reason and ``retry_after_ms`` hints when to retry — the
    429-style contract.
``deadline_exceeded``
    The request's ``deadline_ms`` elapsed before its batch launched.
``error``
    Malformed request or execution failure; ``error`` has the message.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from ..network.graph import NetworkError
from ..sim.sweep import SIMULATORS, WORKLOADS, TrialSpec

__all__ = [
    "PROTOCOL_VERSION",
    "STATUS_ERROR",
    "STATUS_EXPIRED",
    "STATUS_OK",
    "STATUS_REJECTED",
    "ProtocolError",
    "RunRequest",
    "UnsupportedVersionError",
    "check_version",
    "decode_message",
    "encode_message",
    "error_response",
    "expired_response",
    "ok_response",
    "parse_run_request",
    "reject_response",
    "unsupported_version_response",
]

PROTOCOL_VERSION = 1

STATUS_OK = "ok"
STATUS_REJECTED = "rejected"
STATUS_EXPIRED = "deadline_exceeded"
STATUS_ERROR = "error"

#: Ceiling on one encoded message (a line); guards the reader against
#: an endless unterminated line from a confused client.
MAX_LINE_BYTES = 1 << 20


class ProtocolError(ValueError):
    """A line that is not a valid protocol message."""


class UnsupportedVersionError(ProtocolError):
    """A message declaring a protocol version this server cannot speak."""

    def __init__(self, got: Any) -> None:
        super().__init__(
            f"unsupported protocol version {got!r}; this server speaks "
            f"v{PROTOCOL_VERSION}"
        )
        self.got = got


def check_version(msg: dict[str, Any]) -> int:
    """Validate a message's ``v`` field; returns the effective version.

    A missing ``v`` means version 1 (pre-versioning clients); anything
    other than :data:`PROTOCOL_VERSION` raises
    :class:`UnsupportedVersionError`.
    """
    v = msg.get("v", PROTOCOL_VERSION)
    if v != PROTOCOL_VERSION:
        raise UnsupportedVersionError(v)
    return v


def encode_message(msg: dict[str, Any]) -> bytes:
    """One message as a compact, newline-terminated JSON line."""
    return json.dumps(msg, sort_keys=True, separators=(",", ":")).encode() + b"\n"


def decode_message(line: bytes | str) -> dict[str, Any]:
    """Parse one line into a message dict, or raise :class:`ProtocolError`."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"message is not UTF-8: {exc}") from None
    line = line.strip()
    if not line:
        raise ProtocolError("empty message line")
    try:
        msg = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"message is not valid JSON: {exc}") from None
    if not isinstance(msg, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(msg).__name__}"
        )
    return msg


@dataclass(frozen=True)
class RunRequest:
    """A validated ``run`` request, ready for admission."""

    id: str
    spec: TrialSpec
    root_seed: int
    deadline_ms: float | None = None


def _require_int(msg: dict, key: str, default: int) -> int:
    value = msg.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"{key!r} must be an integer, got {value!r}")
    return value


def parse_run_request(msg: dict[str, Any]) -> RunRequest:
    """Validate a ``run`` message into a :class:`RunRequest`.

    Raises :class:`ProtocolError` on any malformed field; spec
    validation is delegated to :meth:`TrialSpec.make`, so the service
    and the sweep runner accept exactly the same grid cells.
    """
    req_id = msg.get("id")
    if req_id is None:
        req_id = ""
    if not isinstance(req_id, str):
        raise ProtocolError(f"'id' must be a string, got {req_id!r}")
    spec_dict = msg.get("spec")
    if not isinstance(spec_dict, dict):
        raise ProtocolError("'spec' must be an object with the trial fields")
    unknown = set(spec_dict) - {
        "workload",
        "simulator",
        "B",
        "workload_params",
        "sim_params",
        "message_length",
        "repeat",
    }
    if unknown:
        raise ProtocolError(f"unknown spec fields: {sorted(unknown)}")
    workload = spec_dict.get("workload")
    if workload not in WORKLOADS:
        raise ProtocolError(
            f"unknown workload {workload!r}; "
            f"registered: {', '.join(sorted(WORKLOADS))}"
        )
    simulator = spec_dict.get("simulator", "wormhole")
    if simulator not in SIMULATORS:
        raise ProtocolError(
            f"unknown simulator {simulator!r}; "
            f"registered: {', '.join(sorted(SIMULATORS))}"
        )
    try:
        spec = TrialSpec.make(
            workload,
            simulator,
            B=_require_int(spec_dict, "B", 1),
            workload_params=spec_dict.get("workload_params"),
            sim_params=spec_dict.get("sim_params"),
            message_length=spec_dict.get("message_length"),
            repeat=_require_int(spec_dict, "repeat", 0),
        )
    except (NetworkError, TypeError) as exc:
        raise ProtocolError(f"invalid spec: {exc}") from None
    root_seed = _require_int(msg, "root_seed", 0)
    deadline_ms = msg.get("deadline_ms")
    if deadline_ms is not None:
        if isinstance(deadline_ms, bool) or not isinstance(
            deadline_ms, (int, float)
        ):
            raise ProtocolError(
                f"'deadline_ms' must be a number, got {deadline_ms!r}"
            )
        if deadline_ms < 0:
            raise ProtocolError("'deadline_ms' must be >= 0")
        deadline_ms = float(deadline_ms)
    return RunRequest(
        id=req_id, spec=spec, root_seed=root_seed, deadline_ms=deadline_ms
    )


# ----------------------------------------------------------------------
# Response builders
# ----------------------------------------------------------------------


def ok_response(
    req_id: str,
    metrics: dict[str, Any],
    *,
    batched: int,
    queue_ms: float,
) -> dict[str, Any]:
    return {
        "v": PROTOCOL_VERSION,
        "id": req_id,
        "status": STATUS_OK,
        "metrics": metrics,
        "batched": int(batched),
        "queue_ms": round(float(queue_ms), 3),
    }


def reject_response(
    req_id: str, reason: str, *, retry_after_ms: float
) -> dict[str, Any]:
    return {
        "v": PROTOCOL_VERSION,
        "id": req_id,
        "status": STATUS_REJECTED,
        "error": reason,
        "retry_after_ms": max(1, round(float(retry_after_ms))),
    }


def expired_response(req_id: str, *, waited_ms: float) -> dict[str, Any]:
    return {
        "v": PROTOCOL_VERSION,
        "id": req_id,
        "status": STATUS_EXPIRED,
        "error": "deadline expired before the request was dispatched",
        "waited_ms": round(float(waited_ms), 3),
    }


def error_response(req_id: str | None, message: str) -> dict[str, Any]:
    return {
        "v": PROTOCOL_VERSION,
        "id": req_id or "",
        "status": STATUS_ERROR,
        "error": message,
    }


def unsupported_version_response(req_id: str | None, got: Any) -> dict[str, Any]:
    """The structured reject for a message with an unknown ``v``."""
    return {
        **error_response(
            req_id,
            f"unsupported protocol version {got!r}; this server speaks "
            f"v{PROTOCOL_VERSION}",
        ),
        "supported_versions": [PROTOCOL_VERSION],
    }
