"""``repro.service`` — the online simulation service.

An asyncio TCP server that turns the batched lockstep simulator into a
continuously-batching trial service, plus the matching client and load
generator:

* :mod:`~repro.service.protocol` — the newline-delimited-JSON wire
  format (``run`` / ``health`` / ``stats`` / ``shutdown``, structured
  rejects with ``retry_after_ms``);
* :mod:`~repro.service.admission` — the bounded admission queue whose
  full-queue rejects carry a drain-time estimate (backpressure);
* :mod:`~repro.service.batcher` — dynamic batching of compatible
  requests (shared :func:`~repro.sim.batch.batch_compat_key`) into
  :func:`~repro.sim.batch.run_wormhole_batch` calls under a
  max-batch / max-wait policy, with deadline cancellation;
* :mod:`~repro.service.server` — the acceptor, stats endpoints, and
  graceful draining shutdown;
* :mod:`~repro.service.client` — :class:`ServiceClient` and the
  bit-exactness-verifying load generator behind ``repro loadgen``.

Responses are bit-identical to serial :class:`~repro.sim.wormhole
.WormholeSimulator` runs with sweep-derived seeds, whatever batch
composition the traffic produces.

Usage::

    # server process
    asyncio.run(repro.service.serve(ServiceConfig(port=7654)))

    # client
    async with await ServiceClient.connect("127.0.0.1", 7654) as c:
        resp = await c.run_trial(
            {"workload": "chain-bundle", "simulator": "wormhole", "B": 2}
        )
"""

from .admission import AdmissionQueue, PendingRequest, QueueFullError
from .batcher import BatchPolicy, DynamicBatcher, execute_compatible
from .client import (
    LoadgenConfig,
    ServiceClient,
    ServiceConnectionError,
    ServiceTimeoutError,
    run_loadgen,
)
from .protocol import (
    PROTOCOL_VERSION,
    STATUS_ERROR,
    STATUS_EXPIRED,
    STATUS_OK,
    STATUS_REJECTED,
    ProtocolError,
    RunRequest,
    UnsupportedVersionError,
    check_version,
    decode_message,
    encode_message,
)
from .server import ServiceConfig, ServiceStats, SimulationService, serve

__all__ = [
    "AdmissionQueue",
    "BatchPolicy",
    "DynamicBatcher",
    "LoadgenConfig",
    "PROTOCOL_VERSION",
    "PendingRequest",
    "ProtocolError",
    "QueueFullError",
    "RunRequest",
    "STATUS_ERROR",
    "STATUS_EXPIRED",
    "STATUS_OK",
    "STATUS_REJECTED",
    "ServiceClient",
    "ServiceConfig",
    "ServiceConnectionError",
    "ServiceStats",
    "ServiceTimeoutError",
    "SimulationService",
    "UnsupportedVersionError",
    "check_version",
    "decode_message",
    "encode_message",
    "execute_compatible",
    "run_loadgen",
    "serve",
]
