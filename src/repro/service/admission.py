"""Bounded admission with explicit backpressure for the service.

The admission queue is the service's only buffer: a FIFO of pending
requests with a hard depth limit.  When the queue is full, admission
fails *immediately* with a :class:`QueueFullError` carrying a
``retry_after_ms`` hint — the 429-style contract — instead of letting
latency grow without bound.  The hint is the queue's estimated drain
time: current depth times an exponentially-weighted moving average of
per-request service time, which the batcher feeds back after every
dispatch (buffer-aware backpressure, the service-level analogue of the
paper model's bounded per-edge buffers).

Requests stay *in* the queue while the batcher's coalescing window is
open — the batcher peeks, waits, then takes — so the advertised depth
is honest: a request counts against the limit until its batch launches.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from .protocol import RunRequest

__all__ = ["AdmissionQueue", "PendingRequest", "QueueFullError"]


class QueueFullError(Exception):
    """Admission denied: the queue is at its depth limit."""

    def __init__(self, retry_after_ms: float) -> None:
        super().__init__(
            f"admission queue full; retry after {retry_after_ms:.0f} ms"
        )
        self.retry_after_ms = retry_after_ms


@dataclass
class PendingRequest:
    """One admitted request waiting for (or riding in) a batch."""

    request: RunRequest
    key: tuple
    batchable: bool
    enqueued_at: float
    expires_at: float | None
    future: "asyncio.Future[dict[str, Any]]" = field(repr=False, default=None)

    def expired(self, now: float) -> bool:
        return self.expires_at is not None and now >= self.expires_at


class AdmissionQueue:
    """A bounded FIFO of :class:`PendingRequest` with arrival signaling.

    Single-producer/single-consumer within one event loop: connection
    handlers :meth:`admit`, the batcher peeks / waits / takes.  No
    locking — the event loop serializes everything.
    """

    def __init__(
        self,
        limit: int,
        *,
        default_service_ms: float = 50.0,
        ewma_alpha: float = 0.2,
    ) -> None:
        if limit < 1:
            raise ValueError(f"queue limit must be >= 1, got {limit}")
        self.limit = int(limit)
        self._items: deque[PendingRequest] = deque()
        self._arrival = asyncio.Event()
        self._service_ms = float(default_service_ms)
        self._alpha = float(ewma_alpha)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.limit

    def retry_after_ms(self) -> float:
        """Estimated time for the current backlog to drain."""
        return max(1.0, len(self._items) * self._service_ms)

    def note_service_time(self, seconds: float, requests: int) -> None:
        """Batcher feedback: one batch of ``requests`` took ``seconds``."""
        if requests < 1:
            return
        per_request_ms = seconds * 1000.0 / requests
        self._service_ms += self._alpha * (per_request_ms - self._service_ms)

    # -- producer side -------------------------------------------------
    def admit(self, pending: PendingRequest) -> None:
        """Append, or raise :class:`QueueFullError` with a retry hint."""
        if self.full:
            raise QueueFullError(self.retry_after_ms())
        self._items.append(pending)
        self._arrival.set()

    # -- consumer (batcher) side ---------------------------------------
    def peek(self) -> PendingRequest:
        """The oldest pending request (queue must be non-empty)."""
        return self._items[0]

    def count_compatible(self, key: tuple) -> int:
        return sum(1 for p in self._items if p.key == key)

    def take_compatible(self, key: tuple, max_batch: int) -> list[PendingRequest]:
        """Remove and return up to ``max_batch`` requests matching ``key``.

        FIFO order among the matches; non-matching requests keep their
        positions and ride a later batch.
        """
        taken: list[PendingRequest] = []
        kept: deque[PendingRequest] = deque()
        while self._items:
            p = self._items.popleft()
            if len(taken) < max_batch and p.key == key:
                taken.append(p)
            else:
                kept.append(p)
        self._items = kept
        return taken

    async def wait_arrival(self, timeout: float | None = None) -> None:
        """Wait until a new request arrives (or the timeout elapses)."""
        self._arrival.clear()
        if self._items and timeout is None:
            return
        try:
            await asyncio.wait_for(self._arrival.wait(), timeout)
        except asyncio.TimeoutError:
            pass

    def kick(self) -> None:
        """Wake any waiter (used when the service starts draining)."""
        self._arrival.set()
