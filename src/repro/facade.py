"""One front door for the router simulators: :func:`repro.simulate`.

The package grew five flit-level router models, each with its own
constructor knob for "buffering per physical channel" (virtual
channels, buffer flits, link bandwidth, buffer slots) and its own
``run`` shape.  :func:`simulate` is the unified entry point: one
``problem``, one ``model`` name, one ``B``, and per-model defaults that
match what the sweep runner uses — so a facade call is bit-identical
to constructing the simulator directly with the same seed.

Migration table — legacy entry point to facade call:

=====================================================  =====================================
Legacy                                                 Facade
=====================================================  =====================================
``WormholeSimulator(net, B, p, s).run(paths, L)``      ``simulate((net, paths), model="wormhole", B=B, priority=p, seed=s, message_length=L)``
``CutThroughSimulator(net, B, p, s).run(paths, L)``    ``simulate((net, paths), model="cut_through", B=B, priority=p, seed=s, message_length=L)``
``StoreForwardSimulator(net, B, p, s).run(paths, L)``  ``simulate((net, paths), model="store_forward", B=B, priority=p, seed=s, message_length=L)``
``RestrictedWormholeSimulator(net, B, s).run(p, L)``   ``simulate((net, paths), model="restricted", B=B, seed=s, message_length=L)``
``AdaptiveMeshRouter(cube, B, pol, s).run(d, L)``      ``simulate((cube, demands), model="adaptive", B=B, policy=pol, seed=s, message_length=L)``
``ContinuousWormholeSimulator(net, n, B, s).run(...)`` ``simulate((net, n, path_of), model="continuous", B=B, seed=s, message_length=L, rate=r, horizon=h)``
``run_<model>_batch(net, paths, L, seeds=...)``        ``simulate((net, paths), model=..., B=B, batch=seeds, message_length=L)``
``repro.sim.wormhole.pad_paths`` (removed)             ``repro.sim.engine.pad_paths``
``repro.sim.wormhole.check_edge_simple`` (removed)     ``repro.sim.engine.check_edge_simple``
``repro.sim.cut_through.pad_paths`` (removed)          ``repro.sim.engine.pad_paths``
``repro.sim.restricted.check_edge_simple`` (removed)   ``repro.sim.engine.check_edge_simple``
=====================================================  =====================================

Passing ``batch=[seed, ...]`` runs one lockstep trial per seed through
the model's batch kernel (:mod:`repro.sim.batch`; every flit-level
router) and returns a list of results, each bit-identical to the
serial ``seed=...`` call.

``problem`` may be:

* a ``(net, paths)`` tuple — the network (or cube + demands for the
  adaptive model, or ``(net, num_sources, path_of)`` for the continuous
  model) plus the routes;
* a :class:`~repro.sim.sweep.Workload` instance;
* a registered workload name (see ``repro.sim.sweep.WORKLOADS``), with
  ``workload_params`` — this form is picklable, so it is the one that
  can execute on a :mod:`repro.exec` process backend.  Registered
  scenarios (``repro.scenarios``) appear here as ``scenario:<name>``.

Every model returns a :class:`~repro.sim.stats.SimulationResult` (the
adaptive router's chosen routes are dropped — use
:class:`~repro.sim.adaptive.AdaptiveMeshRouter` directly if you need
``taken_paths``) except ``"continuous"``, which returns its
:class:`~repro.sim.continuous.ContinuousResult` rate report.
"""

from __future__ import annotations

from typing import Any

from .network.graph import NetworkError
from .sim.sweep import WORKLOADS, Workload, _build_workload

__all__ = ["MODELS", "simulate"]

#: The models :func:`simulate` dispatches across, in paper order.
MODELS = (
    "wormhole",
    "cut_through",
    "store_forward",
    "restricted",
    "adaptive",
    "continuous",
)

#: Models whose ``run`` accepts :mod:`repro.telemetry` probes.
_TELEMETRY_MODELS = frozenset(
    {"wormhole", "cut_through", "store_forward", "adaptive"}
)

#: Per-model arbitration default — the sweep runner's choices, so the
#: facade and ``run_sweep`` agree on what an unadorned trial means.
_PRIORITY_DEFAULTS = {
    "wormhole": "random",
    "cut_through": "random",
    "store_forward": "farthest",
}


def _as_workload(problem: Any, model: str, workload_params) -> Workload:
    """Coerce any accepted ``problem`` form into a :class:`Workload`."""
    if isinstance(problem, Workload):
        return problem
    if isinstance(problem, str):
        if problem not in WORKLOADS:
            raise NetworkError(
                f"unknown workload {problem!r}; "
                f"registered: {', '.join(sorted(WORKLOADS))}"
            )
        params = dict(workload_params or {})
        return _build_workload(problem, tuple(sorted(params.items())))
    if isinstance(problem, tuple) and len(problem) == 2:
        first, second = problem
        if model == "adaptive":
            return Workload(
                net=getattr(first, "network", first),
                cube=first,
                demands=list(second),
            )
        return Workload(net=first, paths=list(second))
    raise TypeError(
        f"problem must be a workload name, a Workload, or a (net, paths) "
        f"tuple; got {type(problem).__name__}"
    )


def _run_wormhole(
    wl, *, B, L, seed, priority, telemetry, max_steps, release, vc_ids=None
):
    from .sim.wormhole import WormholeSimulator

    sim = WormholeSimulator(
        wl.net, num_virtual_channels=B, priority=priority, seed=seed
    )
    return sim.run(
        wl.paths,
        message_length=L,
        release_times=release,
        max_steps=max_steps,
        vc_ids=vc_ids,
        telemetry=telemetry,
    )


def _run_cut_through(wl, *, B, L, seed, priority, telemetry, max_steps, release):
    from .sim.cut_through import CutThroughSimulator

    sim = CutThroughSimulator(
        wl.net, buffer_flits=B, priority=priority, seed=seed
    )
    return sim.run(
        wl.paths,
        message_length=L,
        release_times=release,
        max_steps=max_steps,
        telemetry=telemetry,
    )


def _run_store_forward(wl, *, B, L, seed, priority, telemetry, max_steps, release):
    from .sim.store_forward import StoreForwardSimulator

    sim = StoreForwardSimulator(
        wl.net, bandwidth_flits_per_step=B, priority=priority, seed=seed
    )
    return sim.run(
        wl.paths,
        message_length=L,
        release_times=release,
        max_steps=max_steps,
        telemetry=telemetry,
    )


def _run_restricted(wl, *, B, L, seed, priority, telemetry, max_steps, release):
    from .sim.restricted import RestrictedWormholeSimulator

    sim = RestrictedWormholeSimulator(wl.net, num_buffers=B, seed=seed)
    return sim.run(
        wl.paths, message_length=L, release_times=release, max_steps=max_steps
    )


_PATH_RUNNERS = {
    "wormhole": _run_wormhole,
    "cut_through": _run_cut_through,
    "store_forward": _run_store_forward,
    "restricted": _run_restricted,
}


def _simulate_batch(problem: Any, kwargs: dict[str, Any]) -> list:
    """Lockstep execution of one problem under many seeds (``batch=``)."""
    from .sim import batch as _batch

    model = kwargs["model"]
    if model not in _batch.BATCHED_MODELS:
        raise NetworkError(
            f"model {model!r} has no lockstep batch runner; batched "
            f"models: {', '.join(sorted(_batch.BATCHED_MODELS))}"
        )
    vc_ids = kwargs.get("vc_ids")
    if vc_ids is not None and model != "wormhole":
        raise NetworkError(
            f"vc_ids (per-hop virtual-channel classes) are a wormhole-model "
            f"feature; model {model!r} does not accept them"
        )
    seeds = list(kwargs["batch"])
    B = int(kwargs["B"])
    wl = _as_workload(problem, model, kwargs.get("workload_params"))
    L = kwargs.get("message_length")
    if L is None:
        if isinstance(problem, (str, Workload)):
            L = wl.default_length
        else:
            raise NetworkError(
                "message_length is required with a (net, paths) problem"
            )
    common: dict[str, Any] = {
        "seeds": seeds,
        "release_times": kwargs.get("release_times"),
        "max_steps": kwargs.get("max_steps"),
    }
    priority = kwargs.get("priority") or _PRIORITY_DEFAULTS.get(model)
    if model == "adaptive":
        if wl.cube is None or wl.demands is None:
            raise NetworkError(
                f"the adaptive model needs a mesh problem (a (cube, demands)"
                f" tuple or a mesh workload), got {problem!r}"
            )
        runs = _batch.run_adaptive_batch(
            wl.cube,
            wl.demands,
            message_length=L,
            num_virtual_channels=B,
            policy=kwargs.get("policy") or "west-first",
            **common,
        )
        return [r.result for r in runs]
    paths = wl.padded_paths()
    if model == "wormhole":
        return _batch.run_wormhole_batch(
            wl.net,
            paths,
            message_length=L,
            num_virtual_channels=B,
            priority=priority,
            vc_ids=vc_ids,
            **common,
        )
    if model == "cut_through":
        return _batch.run_cut_through_batch(
            wl.net,
            paths,
            message_length=L,
            buffer_flits=B,
            priority=priority,
            **common,
        )
    if model == "store_forward":
        return _batch.run_store_forward_batch(
            wl.net,
            paths,
            message_length=L,
            bandwidth_flits_per_step=B,
            priority=priority,
            **common,
        )
    return _batch.run_restricted_batch(
        wl.net, paths, message_length=L, num_buffers=B, **common
    )


def _simulate_local(problem: Any, kwargs: dict[str, Any]):
    """The in-process execution path (also the process-backend payload)."""
    if kwargs.get("batch") is not None:
        return _simulate_batch(problem, kwargs)
    model = kwargs["model"]
    B = int(kwargs["B"])
    seed = kwargs["seed"]
    telemetry = kwargs.get("telemetry")
    max_steps = kwargs.get("max_steps")
    release = kwargs.get("release_times")

    if model == "continuous":
        from .sim.continuous import ContinuousWormholeSimulator

        if not (isinstance(problem, tuple) and len(problem) == 3):
            raise TypeError(
                "the continuous model takes problem=(net, num_sources, "
                "path_of)"
            )
        net, num_sources, path_of = problem
        rate, horizon = kwargs.get("rate"), kwargs.get("horizon")
        if rate is None or horizon is None:
            raise TypeError(
                "the continuous model needs rate=... and horizon=..."
            )
        L = kwargs.get("message_length")
        if L is None:
            raise NetworkError("the continuous model needs message_length")
        sim = ContinuousWormholeSimulator(
            net, num_sources, num_virtual_channels=B, seed=seed
        )
        return sim.run(
            rate,
            L,
            path_of,
            horizon=int(horizon),
            sample_every=int(kwargs.get("sample_every", 50)),
        )

    wl = _as_workload(problem, model, kwargs.get("workload_params"))
    L = kwargs.get("message_length")
    if L is None:
        if isinstance(problem, (str, Workload)):
            L = wl.default_length
        else:
            raise NetworkError(
                "message_length is required with a (net, paths) problem"
            )

    if model == "adaptive":
        from .sim.adaptive import AdaptiveMeshRouter

        if wl.cube is None or wl.demands is None:
            raise NetworkError(
                f"the adaptive model needs a mesh problem (a (cube, demands)"
                f" tuple or a mesh workload), got {problem!r}"
            )
        router = AdaptiveMeshRouter(
            wl.cube,
            num_virtual_channels=B,
            policy=kwargs.get("policy") or "west-first",
            seed=seed,
        )
        return router.run(
            wl.demands,
            message_length=L,
            release_times=release,
            max_steps=max_steps,
            telemetry=telemetry,
        ).result

    priority = kwargs.get("priority") or _PRIORITY_DEFAULTS.get(model)
    vc_ids = kwargs.get("vc_ids")
    if vc_ids is not None and model != "wormhole":
        raise NetworkError(
            f"vc_ids (per-hop virtual-channel classes) are a wormhole-model "
            f"feature; model {model!r} does not accept them"
        )
    extra = {"vc_ids": vc_ids} if model == "wormhole" else {}
    return _PATH_RUNNERS[model](
        wl,
        B=B,
        L=L,
        seed=seed,
        priority=priority,
        telemetry=telemetry,
        max_steps=max_steps,
        release=release,
        **extra,
    )


def _simulate_payload(payload: tuple[Any, dict[str, Any]]):
    """Top-level (hence picklable) unit for :mod:`repro.exec` backends."""
    problem, kwargs = payload
    return _simulate_local(problem, kwargs)


def simulate(
    problem: Any,
    *,
    model: str = "wormhole",
    B: int = 1,
    message_length: int | None = None,
    seed: int | None = 0,
    priority: str | None = None,
    policy: str | None = None,
    batch: Any = None,
    vc_ids: Any = None,
    telemetry: Any = None,
    backend: Any = None,
    max_steps: int | None = None,
    release_times: Any = None,
    workload_params: dict[str, Any] | None = None,
    rate: Any = None,
    horizon: int | None = None,
    sample_every: int = 50,
):
    """Simulate ``problem`` under ``model`` with ``B`` channel buffers.

    Parameters
    ----------
    problem:
        A ``(net, paths)`` tuple, a :class:`~repro.sim.sweep.Workload`,
        or a registered workload name (see the module docstring for the
        per-model tuple shapes).
    model:
        One of :data:`MODELS`.  ``B`` maps onto each model's buffering
        knob: virtual channels (wormhole / adaptive / continuous),
        buffer flits (cut-through), link bandwidth (store-and-forward),
        or buffer slots (restricted).
    message_length:
        Flits per message; defaults to the workload's recommended
        length for name/:class:`Workload` problems, required otherwise.
    seed / priority / policy:
        Passed to the model's constructor exactly as a direct call
        would, so facade results are bit-identical to constructing the
        simulator yourself.  ``priority`` defaults per model to the
        sweep runner's choice; ``policy`` is the adaptive turn model.
    batch:
        A sequence of per-trial seeds.  When given, the problem runs as
        one lockstep batch through the model's kernel
        (:mod:`repro.sim.batch`; every flit-level router) and a *list*
        of results comes back, one per seed, each bit-identical to the
        serial ``seed=...`` call.  ``seed`` is ignored; ``telemetry``
        is rejected (probes attach to a single trial).
    vc_ids:
        Per-hop virtual-channel class assignment (e.g. a Dally–Seitz
        dateline), wormhole model only.
    telemetry:
        :mod:`repro.telemetry` probes, for the models that accept them
        (wormhole, cut-through, store-and-forward, adaptive).
    backend:
        A :mod:`repro.exec` backend name or instance; the trial runs
        through it (problem and result travel by pickle for the
        process backend, so prefer the workload-name problem form).
        Incompatible with ``telemetry`` (probes are in-process).
    max_steps / release_times:
        Forwarded to the model's ``run``.
    workload_params:
        Builder parameters when ``problem`` is a workload name.
    rate / horizon / sample_every:
        Continuous-model load parameters (ignored otherwise); ``rate``
        is a scalar arrival probability or a ``(horizon,)`` per-step
        trace.

    Returns
    -------
    :class:`~repro.sim.stats.SimulationResult` — or the continuous
    model's :class:`~repro.sim.continuous.ContinuousResult`.
    """
    if model not in MODELS:
        raise NetworkError(
            f"unknown model {model!r}; supported: {', '.join(MODELS)}"
        )
    if telemetry is not None and model not in _TELEMETRY_MODELS:
        raise NetworkError(
            f"model {model!r} does not support telemetry probes"
        )
    if batch is not None and telemetry is not None:
        raise NetworkError(
            "telemetry probes attach to a single trial; run batches "
            "without telemetry"
        )
    kwargs: dict[str, Any] = {
        "model": model,
        "B": B,
        "message_length": message_length,
        "seed": seed,
        "priority": priority,
        "policy": policy,
        "batch": None if batch is None else list(batch),
        "vc_ids": vc_ids,
        "telemetry": telemetry,
        "max_steps": max_steps,
        "release_times": release_times,
        "workload_params": workload_params,
        "rate": rate,
        "horizon": horizon,
        "sample_every": sample_every,
    }
    if backend is None:
        return _simulate_local(problem, kwargs)
    if telemetry is not None:
        raise NetworkError(
            "telemetry probes are in-process; run with backend=None"
        )
    from .exec import create_backend

    owned = isinstance(backend, str)
    exec_backend = create_backend(backend) if owned else backend
    try:
        return exec_backend.run(_simulate_payload, (problem, kwargs))
    finally:
        if owned:
            exec_backend.close()
