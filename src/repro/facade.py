"""One front door for the router simulators: :func:`repro.simulate`.

The package grew five flit-level router models, each with its own
constructor knob for "buffering per physical channel" (virtual
channels, buffer flits, link bandwidth, buffer slots) and its own
``run`` shape.  :func:`simulate` is the unified entry point: one
``problem``, one ``model`` name, one ``B``, and per-model defaults that
match what the sweep runner uses — so a facade call is bit-identical
to constructing the simulator directly with the same seed.

Migration table — legacy entry point to facade call:

=====================================================  =====================================
Legacy                                                 Facade
=====================================================  =====================================
``WormholeSimulator(net, B, p, s).run(paths, L)``      ``simulate((net, paths), model="wormhole", B=B, priority=p, seed=s, message_length=L)``
``CutThroughSimulator(net, B, p, s).run(paths, L)``    ``simulate((net, paths), model="cut_through", B=B, priority=p, seed=s, message_length=L)``
``StoreForwardSimulator(net, B, p, s).run(paths, L)``  ``simulate((net, paths), model="store_forward", B=B, priority=p, seed=s, message_length=L)``
``RestrictedWormholeSimulator(net, B, s).run(p, L)``   ``simulate((net, paths), model="restricted", B=B, seed=s, message_length=L)``
``AdaptiveMeshRouter(cube, B, pol, s).run(d, L)``      ``simulate((cube, demands), model="adaptive", B=B, policy=pol, seed=s, message_length=L)``
``ContinuousWormholeSimulator(net, n, B, s).run(...)`` ``simulate((net, n, path_of), model="continuous", B=B, seed=s, message_length=L, rate=r, horizon=h)``
``run_<model>_batch(net, paths, L, seeds=...)``        ``simulate((net, paths), model=..., B=B, batch=seeds, message_length=L)``
``repro.sim.wormhole.pad_paths`` (removed)             ``repro.sim.engine.pad_paths``
``repro.sim.wormhole.check_edge_simple`` (removed)     ``repro.sim.engine.check_edge_simple``
``repro.sim.cut_through.pad_paths`` (removed)          ``repro.sim.engine.pad_paths``
``repro.sim.restricted.check_edge_simple`` (removed)   ``repro.sim.engine.check_edge_simple``
bare ``SimulationResult`` return                       :class:`SimResult` (attribute-compatible wrapper)
``metrics["makespan"]`` dict access                    ``result.makespan`` (``result["makespan"]`` still works, with a ``DeprecationWarning``)
``metrics["steps"]``                                   ``result.steps``
``metrics["delivered"]`` count                         ``result.num_delivered``
``metrics["completion_digest"]`` / raw times           ``result.delays``
(no legacy equivalent)                                 ``result.mode`` / ``result.provenance`` / ``simulate(..., mode="estimate")`` -> ``result.envelope``
=====================================================  =====================================

Passing ``batch=[seed, ...]`` runs one lockstep trial per seed through
the model's batch kernel (:mod:`repro.sim.batch`; every flit-level
router) and returns a list of results, each bit-identical to the
serial ``seed=...`` call.

``problem`` may be:

* a ``(net, paths)`` tuple — the network (or cube + demands for the
  adaptive model, or ``(net, num_sources, path_of)`` for the continuous
  model) plus the routes;
* a :class:`~repro.sim.sweep.Workload` instance;
* a registered workload name (see ``repro.sim.sweep.WORKLOADS``), with
  ``workload_params`` — this form is picklable, so it is the one that
  can execute on a :mod:`repro.exec` process backend.  Registered
  scenarios (``repro.scenarios``) appear here as ``scenario:<name>``.

Every model returns a :class:`SimResult` wrapping the underlying
:class:`~repro.sim.stats.SimulationResult` (the adaptive router's
chosen routes are dropped — use
:class:`~repro.sim.adaptive.AdaptiveMeshRouter` directly if you need
``taken_paths``) except ``"continuous"``, which returns its
:class:`~repro.sim.continuous.ContinuousResult` rate report unwrapped.
With ``mode="estimate"`` no simulation runs at all: the result carries
a :class:`~repro.analysis.estimate.DelayEnvelope` (analytic lower /
upper makespan bounds) computed in microseconds.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any

import numpy as np

from .network.graph import NetworkError
from .sim.sweep import WORKLOADS, Workload, _build_workload

__all__ = ["MODELS", "SIMULATE_MODES", "SimResult", "simulate"]

#: Execution modes of :func:`simulate` (and of v1 wire run requests).
SIMULATE_MODES = ("exact", "estimate")


@dataclass
class SimResult:
    """Structured result of one :func:`simulate` call.

    Attributes
    ----------
    mode:
        The execution mode that produced it: ``"exact"`` (a simulation
        ran) or ``"estimate"`` (analytic envelope, no simulation).
    provenance:
        Where the numbers came from: ``"exact"`` | ``"estimate"`` |
        ``"cache"`` (an exact result served from a result cache, e.g.
        by :func:`repro.sim.sweep.run_sweep` or the cluster tier).
    result:
        The wrapped :class:`~repro.sim.stats.SimulationResult` (exact
        runs only).  Every attribute of it — ``makespan``,
        ``completion_times``, ``deadlocked``, ... — is also reachable
        directly on this object, so exact results are drop-in
        compatible with the bare results :func:`simulate` used to
        return.
    envelope:
        The :class:`~repro.analysis.estimate.DelayEnvelope` (estimate
        runs only); its ``lower`` / ``upper`` / ``tightness`` fields
        are likewise reachable directly.

    ``result["key"]`` dict-style access is supported for legacy metric
    consumers but deprecated — use the attributes (see the migration
    table in the module docstring).
    """

    mode: str
    provenance: str
    result: Any = None
    envelope: Any = None

    @property
    def steps(self) -> int:
        """Flit steps executed (0 for estimates — nothing is simulated)."""
        return 0 if self.result is None else int(self.result.steps_executed)

    @property
    def delays(self) -> np.ndarray:
        """Per-message delivery times: measured completion times for
        exact runs, analytic per-message floors for estimates."""
        if self.result is not None:
            return self.result.completion_times
        return np.asarray(self.envelope.per_message_lower, dtype=np.int64)

    def __getattr__(self, name: str) -> Any:
        # Dataclass fields resolve normally; only unknown names land
        # here and are forwarded to the wrapped result / envelope.  The
        # field names themselves must never recurse (unpickling probes
        # attributes before __dict__ is populated).
        if name.startswith("_") or name in (
            "mode",
            "provenance",
            "result",
            "envelope",
        ):
            raise AttributeError(name)
        target = self.result if self.result is not None else self.envelope
        if target is not None:
            try:
                return getattr(target, name)
            except AttributeError:
                pass
        raise AttributeError(
            f"{type(self).__name__} ({self.mode} mode) has no attribute "
            f"{name!r}"
        )

    def __getitem__(self, key: str) -> Any:
        warnings.warn(
            "dict-style access to simulate() results is deprecated; use "
            f"attribute access (result.{key}) — see the migration table "
            "in repro.facade",
            DeprecationWarning,
            stacklevel=2,
        )
        try:
            return getattr(self, key)
        except AttributeError:
            raise KeyError(key) from None

    def get(self, key: str, default: Any = None) -> Any:
        """Dict-compat ``get`` (deprecated, like ``__getitem__``)."""
        try:
            return self[key]
        except KeyError:
            return default

#: The models :func:`simulate` dispatches across, in paper order.
MODELS = (
    "wormhole",
    "cut_through",
    "store_forward",
    "restricted",
    "adaptive",
    "continuous",
)

#: Models whose ``run`` accepts :mod:`repro.telemetry` probes.
_TELEMETRY_MODELS = frozenset(
    {"wormhole", "cut_through", "store_forward", "adaptive"}
)

#: Per-model arbitration default — the sweep runner's choices, so the
#: facade and ``run_sweep`` agree on what an unadorned trial means.
_PRIORITY_DEFAULTS = {
    "wormhole": "random",
    "cut_through": "random",
    "store_forward": "farthest",
}


def _as_workload(problem: Any, model: str, workload_params) -> Workload:
    """Coerce any accepted ``problem`` form into a :class:`Workload`."""
    if isinstance(problem, Workload):
        return problem
    if isinstance(problem, str):
        if problem not in WORKLOADS:
            raise NetworkError(
                f"unknown workload {problem!r}; "
                f"registered: {', '.join(sorted(WORKLOADS))}"
            )
        params = dict(workload_params or {})
        return _build_workload(problem, tuple(sorted(params.items())))
    if isinstance(problem, tuple) and len(problem) == 2:
        first, second = problem
        if model == "adaptive":
            return Workload(
                net=getattr(first, "network", first),
                cube=first,
                demands=list(second),
            )
        return Workload(net=first, paths=list(second))
    raise TypeError(
        f"problem must be a workload name, a Workload, or a (net, paths) "
        f"tuple; got {type(problem).__name__}"
    )


def _run_wormhole(
    wl, *, B, L, seed, priority, telemetry, max_steps, release, vc_ids=None
):
    from .sim.wormhole import WormholeSimulator

    sim = WormholeSimulator(
        wl.net, num_virtual_channels=B, priority=priority, seed=seed
    )
    return sim.run(
        wl.paths,
        message_length=L,
        release_times=release,
        max_steps=max_steps,
        vc_ids=vc_ids,
        telemetry=telemetry,
    )


def _run_cut_through(wl, *, B, L, seed, priority, telemetry, max_steps, release):
    from .sim.cut_through import CutThroughSimulator

    sim = CutThroughSimulator(
        wl.net, buffer_flits=B, priority=priority, seed=seed
    )
    return sim.run(
        wl.paths,
        message_length=L,
        release_times=release,
        max_steps=max_steps,
        telemetry=telemetry,
    )


def _run_store_forward(wl, *, B, L, seed, priority, telemetry, max_steps, release):
    from .sim.store_forward import StoreForwardSimulator

    sim = StoreForwardSimulator(
        wl.net, bandwidth_flits_per_step=B, priority=priority, seed=seed
    )
    return sim.run(
        wl.paths,
        message_length=L,
        release_times=release,
        max_steps=max_steps,
        telemetry=telemetry,
    )


def _run_restricted(wl, *, B, L, seed, priority, telemetry, max_steps, release):
    from .sim.restricted import RestrictedWormholeSimulator

    sim = RestrictedWormholeSimulator(wl.net, num_buffers=B, seed=seed)
    return sim.run(
        wl.paths, message_length=L, release_times=release, max_steps=max_steps
    )


_PATH_RUNNERS = {
    "wormhole": _run_wormhole,
    "cut_through": _run_cut_through,
    "store_forward": _run_store_forward,
    "restricted": _run_restricted,
}


def _simulate_batch(problem: Any, kwargs: dict[str, Any]) -> list:
    """Lockstep execution of one problem under many seeds (``batch=``)."""
    from .sim import batch as _batch

    model = kwargs["model"]
    if model not in _batch.BATCHED_MODELS:
        raise NetworkError(
            f"model {model!r} has no lockstep batch runner; batched "
            f"models: {', '.join(sorted(_batch.BATCHED_MODELS))}"
        )
    vc_ids = kwargs.get("vc_ids")
    if vc_ids is not None and model != "wormhole":
        raise NetworkError(
            f"vc_ids (per-hop virtual-channel classes) are a wormhole-model "
            f"feature; model {model!r} does not accept them"
        )
    seeds = list(kwargs["batch"])
    B = int(kwargs["B"])
    wl = _as_workload(problem, model, kwargs.get("workload_params"))
    L = kwargs.get("message_length")
    if L is None:
        if isinstance(problem, (str, Workload)):
            L = wl.default_length
        else:
            raise NetworkError(
                "message_length is required with a (net, paths) problem"
            )
    common: dict[str, Any] = {
        "seeds": seeds,
        "release_times": kwargs.get("release_times"),
        "max_steps": kwargs.get("max_steps"),
    }
    priority = kwargs.get("priority") or _PRIORITY_DEFAULTS.get(model)
    if model == "adaptive":
        if wl.cube is None or wl.demands is None:
            raise NetworkError(
                f"the adaptive model needs a mesh problem (a (cube, demands)"
                f" tuple or a mesh workload), got {problem!r}"
            )
        runs = _batch.run_adaptive_batch(
            wl.cube,
            wl.demands,
            message_length=L,
            num_virtual_channels=B,
            policy=kwargs.get("policy") or "west-first",
            **common,
        )
        return [r.result for r in runs]
    paths = wl.padded_paths()
    if model == "wormhole":
        return _batch.run_wormhole_batch(
            wl.net,
            paths,
            message_length=L,
            num_virtual_channels=B,
            priority=priority,
            vc_ids=vc_ids,
            **common,
        )
    if model == "cut_through":
        return _batch.run_cut_through_batch(
            wl.net,
            paths,
            message_length=L,
            buffer_flits=B,
            priority=priority,
            **common,
        )
    if model == "store_forward":
        return _batch.run_store_forward_batch(
            wl.net,
            paths,
            message_length=L,
            bandwidth_flits_per_step=B,
            priority=priority,
            **common,
        )
    return _batch.run_restricted_batch(
        wl.net, paths, message_length=L, num_buffers=B, **common
    )


def _simulate_local(problem: Any, kwargs: dict[str, Any]):
    """The in-process execution path (also the process-backend payload)."""
    if kwargs.get("batch") is not None:
        return _simulate_batch(problem, kwargs)
    model = kwargs["model"]
    B = int(kwargs["B"])
    seed = kwargs["seed"]
    telemetry = kwargs.get("telemetry")
    max_steps = kwargs.get("max_steps")
    release = kwargs.get("release_times")

    if model == "continuous":
        from .sim.continuous import ContinuousWormholeSimulator

        if not (isinstance(problem, tuple) and len(problem) == 3):
            raise TypeError(
                "the continuous model takes problem=(net, num_sources, "
                "path_of)"
            )
        net, num_sources, path_of = problem
        rate, horizon = kwargs.get("rate"), kwargs.get("horizon")
        if rate is None or horizon is None:
            raise TypeError(
                "the continuous model needs rate=... and horizon=..."
            )
        L = kwargs.get("message_length")
        if L is None:
            raise NetworkError("the continuous model needs message_length")
        sim = ContinuousWormholeSimulator(
            net, num_sources, num_virtual_channels=B, seed=seed
        )
        return sim.run(
            rate,
            L,
            path_of,
            horizon=int(horizon),
            sample_every=int(kwargs.get("sample_every", 50)),
        )

    wl = _as_workload(problem, model, kwargs.get("workload_params"))
    L = kwargs.get("message_length")
    if L is None:
        if isinstance(problem, (str, Workload)):
            L = wl.default_length
        else:
            raise NetworkError(
                "message_length is required with a (net, paths) problem"
            )

    if model == "adaptive":
        from .sim.adaptive import AdaptiveMeshRouter

        if wl.cube is None or wl.demands is None:
            raise NetworkError(
                f"the adaptive model needs a mesh problem (a (cube, demands)"
                f" tuple or a mesh workload), got {problem!r}"
            )
        router = AdaptiveMeshRouter(
            wl.cube,
            num_virtual_channels=B,
            policy=kwargs.get("policy") or "west-first",
            seed=seed,
        )
        return router.run(
            wl.demands,
            message_length=L,
            release_times=release,
            max_steps=max_steps,
            telemetry=telemetry,
        ).result

    priority = kwargs.get("priority") or _PRIORITY_DEFAULTS.get(model)
    vc_ids = kwargs.get("vc_ids")
    if vc_ids is not None and model != "wormhole":
        raise NetworkError(
            f"vc_ids (per-hop virtual-channel classes) are a wormhole-model "
            f"feature; model {model!r} does not accept them"
        )
    extra = {"vc_ids": vc_ids} if model == "wormhole" else {}
    return _PATH_RUNNERS[model](
        wl,
        B=B,
        L=L,
        seed=seed,
        priority=priority,
        telemetry=telemetry,
        max_steps=max_steps,
        release=release,
        **extra,
    )


def _simulate_payload(payload: tuple[Any, dict[str, Any]]):
    """Top-level (hence picklable) unit for :mod:`repro.exec` backends."""
    problem, kwargs = payload
    return _simulate_local(problem, kwargs)


def simulate(
    problem: Any,
    *,
    model: str = "wormhole",
    B: int = 1,
    mode: str = "exact",
    message_length: int | None = None,
    seed: int | None = 0,
    priority: str | None = None,
    policy: str | None = None,
    batch: Any = None,
    vc_ids: Any = None,
    telemetry: Any = None,
    backend: Any = None,
    max_steps: int | None = None,
    release_times: Any = None,
    workload_params: dict[str, Any] | None = None,
    rate: Any = None,
    horizon: int | None = None,
    sample_every: int = 50,
):
    """Simulate ``problem`` under ``model`` with ``B`` channel buffers.

    Parameters
    ----------
    problem:
        A ``(net, paths)`` tuple, a :class:`~repro.sim.sweep.Workload`,
        or a registered workload name (see the module docstring for the
        per-model tuple shapes).
    model:
        One of :data:`MODELS`.  ``B`` maps onto each model's buffering
        knob: virtual channels (wormhole / adaptive / continuous),
        buffer flits (cut-through), link bandwidth (store-and-forward),
        or buffer slots (restricted).
    mode:
        ``"exact"`` (default) runs the simulator; ``"estimate"``
        computes the analytic delay envelope instead
        (:mod:`repro.analysis.estimate`) — no simulation, microsecond
        latency, and the returned :class:`SimResult` carries the
        envelope's ``lower`` / ``upper`` makespan bounds in place of a
        trajectory.  Estimates exist for every batched model (adaptive
        is upper-bound only); the continuous model and ``batch=`` /
        ``telemetry`` / ``backend`` options are exact-mode features.
    message_length:
        Flits per message; defaults to the workload's recommended
        length for name/:class:`Workload` problems, required otherwise.
    seed / priority / policy:
        Passed to the model's constructor exactly as a direct call
        would, so facade results are bit-identical to constructing the
        simulator yourself.  ``priority`` defaults per model to the
        sweep runner's choice; ``policy`` is the adaptive turn model.
    batch:
        A sequence of per-trial seeds.  When given, the problem runs as
        one lockstep batch through the model's kernel
        (:mod:`repro.sim.batch`; every flit-level router) and a *list*
        of results comes back, one per seed, each bit-identical to the
        serial ``seed=...`` call.  ``seed`` is ignored; ``telemetry``
        is rejected (probes attach to a single trial).
    vc_ids:
        Per-hop virtual-channel class assignment (e.g. a Dally–Seitz
        dateline), wormhole model only.
    telemetry:
        :mod:`repro.telemetry` probes, for the models that accept them
        (wormhole, cut-through, store-and-forward, adaptive).
    backend:
        A :mod:`repro.exec` backend name or instance; the trial runs
        through it (problem and result travel by pickle for the
        process backend, so prefer the workload-name problem form).
        Incompatible with ``telemetry`` (probes are in-process).
    max_steps / release_times:
        Forwarded to the model's ``run``.
    workload_params:
        Builder parameters when ``problem`` is a workload name.
    rate / horizon / sample_every:
        Continuous-model load parameters (ignored otherwise); ``rate``
        is a scalar arrival probability or a ``(horizon,)`` per-step
        trace.

    Returns
    -------
    :class:`SimResult` wrapping the
    :class:`~repro.sim.stats.SimulationResult` (a list of them for
    ``batch=`` runs) — or the continuous model's bare
    :class:`~repro.sim.continuous.ContinuousResult`.
    """
    if model not in MODELS:
        raise NetworkError(
            f"unknown model {model!r}; supported: {', '.join(MODELS)}"
        )
    if mode not in SIMULATE_MODES:
        raise NetworkError(
            f"unknown mode {mode!r}; supported: {', '.join(SIMULATE_MODES)}"
        )
    if mode == "estimate":
        from .analysis.estimate import EstimateError, estimate_workload

        if model == "continuous":
            raise EstimateError(
                "the continuous model has no analytic envelope; estimable "
                "models are the batched routers (see "
                "repro.analysis.estimate.ESTIMATABLE_MODELS)"
            )
        for name, value in (("batch", batch), ("telemetry", telemetry)):
            if value is not None:
                raise NetworkError(
                    f"{name}= is an exact-mode feature; estimates are "
                    "single closed-form evaluations"
                )
        wl = _as_workload(problem, model, workload_params)
        L = message_length
        if L is None:
            if isinstance(problem, (str, Workload)):
                L = wl.default_length
            else:
                raise NetworkError(
                    "message_length is required with a (net, paths) problem"
                )
        env = estimate_workload(
            wl, model, B=int(B), message_length=L, release_times=release_times
        )
        return SimResult(mode="estimate", provenance="estimate", envelope=env)
    if telemetry is not None and model not in _TELEMETRY_MODELS:
        raise NetworkError(
            f"model {model!r} does not support telemetry probes"
        )
    if batch is not None and telemetry is not None:
        raise NetworkError(
            "telemetry probes attach to a single trial; run batches "
            "without telemetry"
        )
    kwargs: dict[str, Any] = {
        "model": model,
        "B": B,
        "message_length": message_length,
        "seed": seed,
        "priority": priority,
        "policy": policy,
        "batch": None if batch is None else list(batch),
        "vc_ids": vc_ids,
        "telemetry": telemetry,
        "max_steps": max_steps,
        "release_times": release_times,
        "workload_params": workload_params,
        "rate": rate,
        "horizon": horizon,
        "sample_every": sample_every,
    }
    if backend is None:
        return _wrap_exact(model, _simulate_local(problem, kwargs))
    if telemetry is not None:
        raise NetworkError(
            "telemetry probes are in-process; run with backend=None"
        )
    from .exec import create_backend

    owned = isinstance(backend, str)
    exec_backend = create_backend(backend) if owned else backend
    try:
        return _wrap_exact(
            model, exec_backend.run(_simulate_payload, (problem, kwargs))
        )
    finally:
        if owned:
            exec_backend.close()


def _wrap_exact(model: str, raw: Any) -> Any:
    """Wrap simulator output in :class:`SimResult` (continuous results
    are rate reports with their own shape and stay bare)."""
    if model == "continuous":
        return raw
    if isinstance(raw, list):
        return [SimResult(mode="exact", provenance="exact", result=r) for r in raw]
    return SimResult(mode="exact", provenance="exact", result=raw)
