"""Shared content-hash result cache for trial metrics.

Simulation trials are pure functions of ``(workload, model, B, seed)``
— the same spec at the same root seed always yields bit-identical
metrics — which makes their results infinitely cacheable.  This module
is the one cache implementation every consumer fronts:

* :func:`repro.sim.sweep.run_sweep` serves repeated grid cells from it
  (``cache_dir=``), recomputing only the delta when a grid axis
  changes;
* the :mod:`repro.cluster` router consults it *before* forwarding a
  ``run`` request to a worker, so repeat traffic across the whole
  sharded tier is answered without spending any worker compute — a
  persistent **cross-worker** result tier.

Entries are one JSON file per trial under a cache directory, named by
:meth:`~repro.sim.sweep.TrialSpec.cache_key` — a SHA-256 of the trial's
canonical identity plus the root seed.  Every entry stores the full
identity alongside the metrics, and :meth:`ResultCache.load` verifies
the stored identity against the requested one: a hash collision (or a
stale format) is detected and treated as a miss, never served — the
same fallback the sweep cache has always had.  Writes are atomic
(temp file + :func:`os.replace`), so concurrent writers — parallel
sweeps, several router processes sharing one directory — can race
without ever exposing a torn entry.

Hit/miss/store counters ride on :class:`~repro.telemetry.metrics
.EventCounter` and surface through ``stats``/``health`` wherever the
cache is mounted.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from .telemetry.metrics import EventCounter

__all__ = [
    "CACHE_VERSION",
    "ResultCache",
    "load_entry",
    "store_entry",
]

#: On-disk entry format version.  Bumping it invalidates every existing
#: entry (they fail the version check and are recomputed), which is the
#: correct response to any change in metric semantics.
CACHE_VERSION = 1


def load_entry(path: Path, identity: dict[str, Any]) -> dict[str, Any] | None:
    """Read one cache file; ``None`` unless it verifiably matches.

    ``identity`` is the trial's canonical identity dict (see
    :meth:`~repro.sim.sweep.TrialSpec.key`).  A missing or unreadable
    file, a stale format version, or a stored identity differing from
    the requested one (a hash collision) all return ``None`` — the
    caller recomputes, it never serves a wrong answer.
    """
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if payload.get("v") != CACHE_VERSION or payload.get("spec") != identity:
        return None  # hash collision or stale format: recompute
    metrics = payload.get("metrics")
    return metrics if isinstance(metrics, dict) else None


def store_entry(
    path: Path,
    identity: dict[str, Any],
    metrics: dict[str, Any],
    root_seed: int,
) -> None:
    """Atomically write one cache file (temp + rename, racer-safe)."""
    payload = {
        "v": CACHE_VERSION,
        "root_seed": int(root_seed),
        "spec": identity,
        "metrics": metrics,
    }
    tmp = path.with_suffix(f".tmp{os.getpid()}")
    tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
    os.replace(tmp, path)


class ResultCache:
    """A directory of per-trial JSON results with hit/miss accounting.

    Parameters
    ----------
    root:
        Cache directory (created if missing).  Safe to share between
        processes; entries are written atomically.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.counters = EventCounter("hits", "misses", "stores")

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load(self, key: str, identity: dict[str, Any]) -> dict[str, Any] | None:
        """Metrics for ``key`` if present and identity-verified, else ``None``."""
        metrics = load_entry(self._path(key), identity)
        self.counters.bump("hits" if metrics is not None else "misses")
        return metrics

    def store(
        self,
        key: str,
        identity: dict[str, Any],
        metrics: dict[str, Any],
        root_seed: int,
    ) -> None:
        """Record ``metrics`` under ``key`` (atomic, last writer wins)."""
        store_entry(self._path(key), identity, metrics, root_seed)
        self.counters.bump("stores")

    def __len__(self) -> int:
        """Entries currently on disk (scans the directory)."""
        return sum(1 for _ in self.root.glob("*.json"))

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe counters for ``stats``/``health`` endpoints.

        The canonical keys are namespaced — ``cache_hits``,
        ``cache_misses``, ``cache_stores``, ``cache_hit_rate`` — so a
        cache block can be merged into a service's flat counter dict
        without colliding with other subsystems (the schema every
        endpoint follows; see ``repro.service.server.ServiceStats``).

        .. deprecated::
            The bare ``hits`` / ``misses`` / ``stores`` / ``hit_rate``
            keys are still emitted for one release; read the
            ``cache_``-prefixed names.
        """
        counts = self.counters.snapshot()
        lookups = counts["hits"] + counts["misses"]
        hit_rate = round(counts["hits"] / lookups, 4) if lookups else 0.0
        return {
            "dir": str(self.root),
            "cache_hits": counts["hits"],
            "cache_misses": counts["misses"],
            "cache_stores": counts["stores"],
            "cache_hit_rate": hit_rate,
            # Legacy aliases (one release): prefer the cache_* keys.
            **counts,
            "hit_rate": hit_rate,
        }
