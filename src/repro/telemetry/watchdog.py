"""Slow-progress / livelock watchdog.

The simulators already *detect deadlock* (no mover while every pending
message is released) — but two pathologies slip through and silently
burn steps until ``max_steps``:

* **stall**: nothing moves for many consecutive steps while the run
  waits on far-future releases (a mis-built schedule, a starved phase);
* **low delivery rate**: movement continues but deliveries crawl — the
  classic head-of-line convoy, where one blocked worm serializes
  everything behind it.

The watchdog observes the step stream, records timestamped alerts, and
annotates ``result.extra["watchdog"]`` so a finished (or aborted) run
explains itself.  With ``abort=True`` it asks the simulator to stop at
the first alert instead of crawling to ``max_steps``; the partial
result is annotated with ``extra["telemetry_abort"]``.
"""

from __future__ import annotations

import numpy as np

from .probe import Probe, RunMeta

__all__ = ["Watchdog"]


class Watchdog(Probe):
    """Annotate (or abort) runs that stall or deliver too slowly.

    Parameters
    ----------
    stall_steps:
        Alert when no message moves for this many consecutive steps.
    min_rate:
        Optional delivered-messages-per-step floor; checked over
        trailing windows of ``rate_window`` steps (the first window is
        exempt — pipelines need time to fill).
    rate_window:
        Window length (steps) for the rate check.
    abort:
        Request a simulator abort at the first alert.
    """

    def __init__(
        self,
        stall_steps: int = 200,
        min_rate: float | None = None,
        rate_window: int = 500,
        abort: bool = False,
    ) -> None:
        super().__init__()
        if stall_steps < 1:
            raise ValueError("stall_steps must be >= 1")
        if rate_window < 1:
            raise ValueError("rate_window must be >= 1")
        self.stall_steps = int(stall_steps)
        self.min_rate = min_rate
        self.rate_window = int(rate_window)
        self.abort = bool(abort)
        self.alerts: list[dict] = []
        self._reset()

    def _reset(self) -> None:
        self.alerts = []
        self.delivered = 0
        self._no_mover_run = 0
        self._last_progress: int | None = None
        self._steps_seen = 0
        self._delivered_at_window_start = 0
        self._stall_alerted = False

    # ------------------------------------------------------------------
    def on_run_start(self, meta: RunMeta) -> None:
        self._reset()

    def on_complete(self, t: int, messages: np.ndarray) -> None:
        self.delivered += int(messages.size)

    def on_step(self, t: int, movers: np.ndarray, k: np.ndarray) -> None:
        self._steps_seen += 1
        if movers.size:
            self._no_mover_run = 0
            self._last_progress = t
            self._stall_alerted = False
        else:
            self._no_mover_run += 1
            if self._no_mover_run >= self.stall_steps and not self._stall_alerted:
                self._alert(
                    {
                        "type": "stall",
                        "step": t,
                        "stalled_steps": self._no_mover_run,
                        "detail": (
                            f"no message moved for {self._no_mover_run} "
                            "consecutive steps"
                        ),
                    }
                )
                self._stall_alerted = True
        if (
            self.min_rate is not None
            and self._steps_seen % self.rate_window == 0
            and self._steps_seen > self.rate_window  # first window exempt
        ):
            window_delivered = self.delivered - self._delivered_at_window_start
            rate = window_delivered / self.rate_window
            if rate < self.min_rate:
                self._alert(
                    {
                        "type": "low-rate",
                        "step": t,
                        "rate": rate,
                        "detail": (
                            f"delivered {window_delivered} messages in the "
                            f"last {self.rate_window} steps "
                            f"({rate:.4f}/step < floor {self.min_rate})"
                        ),
                    }
                )
        if (
            self.min_rate is not None
            and self._steps_seen % self.rate_window == 0
        ):
            self._delivered_at_window_start = self.delivered

    def on_deadlock(self, t: int, pending: np.ndarray) -> None:
        self.alerts.append(
            {
                "type": "deadlock",
                "step": t,
                "pending": pending.tolist(),
                "detail": f"deadlocked with {pending.size} undelivered messages",
            }
        )

    def on_run_end(self, result) -> None:
        result.extra["watchdog"] = {
            "tripped": bool(self.alerts),
            "alerts": list(self.alerts),
            "delivered": self.delivered,
            "last_progress_step": self._last_progress,
            "steps_observed": self._steps_seen,
        }

    # ------------------------------------------------------------------
    @property
    def tripped(self) -> bool:
        return bool(self.alerts)

    def _alert(self, alert: dict) -> None:
        self.alerts.append(alert)
        if self.abort:
            self.request_abort(f"watchdog: {alert['detail']}")
