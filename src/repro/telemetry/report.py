"""Text / markdown rendering of a collected run.

:func:`render_report` takes whatever collectors were attached and emits
the sections it can: run summary, hottest edges, buffer occupancy,
stall attribution (blame pairs and the worst head-of-line chain), and
throughput.  Sections for missing collectors are skipped, so the
renderer composes with any probe subset.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..analysis.tables import Table
from .collectors import (
    BufferOccupancyCollector,
    ChannelUtilizationCollector,
    EdgeContentionCollector,
    StallAttributionCollector,
    ThroughputCollector,
)
from .probe import Probe, ProbeSet

__all__ = ["render_report"]


def _find(probes: list[Probe], probe_type: type):
    for p in probes:
        if isinstance(p, probe_type):
            return p
    return None


def render_report(
    probes: ProbeSet | Probe | Iterable[Probe],
    result=None,
    top: int = 5,
    title: str = "Telemetry report",
) -> str:
    """Render the attached collectors into a markdown-flavoured report."""
    if isinstance(probes, Probe):
        plist = [probes]
    else:
        plist = list(probes)
    sections: list[str] = [f"# {title}"]

    if result is not None:
        sections.append(_summary_section(result))

    util = _find(plist, ChannelUtilizationCollector)
    if util is not None:
        sections.append(_utilization_section(util, top))

    occ = _find(plist, BufferOccupancyCollector)
    if occ is not None:
        sections.append(_occupancy_section(occ, top))

    stall = _find(plist, StallAttributionCollector)
    contention = _find(plist, EdgeContentionCollector)
    if stall is not None or contention is not None:
        sections.append(_stall_section(stall, contention, top))

    thr = _find(plist, ThroughputCollector)
    if thr is not None:
        sections.append(_throughput_section(thr))

    return "\n\n".join(sections)


def _summary_section(result) -> str:
    lines = ["## Run summary"]
    lines.append(
        f"delivered {result.num_delivered}/{result.num_messages} messages "
        f"in {result.steps_executed} flit steps (makespan {result.makespan})"
    )
    lines.append(f"total blocked message-steps: {result.total_blocked_steps}")
    flags = []
    if result.deadlocked:
        flags.append("DEADLOCKED")
    if result.hit_step_cap:
        flags.append("HIT STEP CAP")
    if result.extra.get("telemetry_abort"):
        flags.append(f"ABORTED ({result.extra['telemetry_abort']})")
    if flags:
        lines.append("flags: " + ", ".join(flags))
    wd = result.extra.get("watchdog")
    if wd is not None:
        if wd["tripped"]:
            for alert in wd["alerts"]:
                lines.append(f"watchdog alert @ step {alert['step']}: {alert['detail']}")
        else:
            lines.append("watchdog: no alerts")
    return "\n".join(lines)


def _utilization_section(util: ChannelUtilizationCollector, top: int) -> str:
    lines = ["## Hottest edges (flits crossed)"]
    hottest = util.hottest(top)
    if not hottest:
        lines.append("no flits crossed any edge")
        return "\n".join(lines)
    total = util.total_flits
    table = Table("", ["rank", "edge", "flits", "share"])
    for rank, (edge, flits) in enumerate(hottest, start=1):
        table.add_row([rank, edge, flits, f"{100.0 * flits / total:.1f}%"])
    lines.append(table.render().lstrip("\n"))
    lines.append(f"total flits crossed: {total}")
    if util.flits_per_step:
        peak_t, peak = max(util.flits_per_step, key=lambda p: p[1])
        lines.append(f"peak step throughput: {peak} flits at step {peak_t}")
    return "\n".join(lines)


def _occupancy_section(occ: BufferOccupancyCollector, top: int) -> str:
    lines = ["## Buffer occupancy"]
    if occ.steps_observed == 0:
        lines.append("no steps observed")
        return "\n".join(lines)
    hist = occ.global_histogram()
    levels = " | ".join(
        f"{level}: {100.0 * frac:.1f}%" for level, frac in enumerate(hist)
    )
    lines.append(f"edge-steps by occupied slots — {levels}")
    mean = occ.mean_occupancy()
    order = mean.argsort(kind="stable")[::-1][:top]
    table = Table("", ["edge", "mean occupancy", "max"])
    for e in order:
        if mean[e] <= 0:
            continue
        table.add_row([int(e), float(mean[e]), int(occ.max_occupancy[e])])
    if table.rows:
        lines.append("fullest buffers:")
        lines.append(table.render().lstrip("\n"))
    return "\n".join(lines)


def _stall_section(
    stall: StallAttributionCollector | None,
    contention: EdgeContentionCollector | None,
    top: int,
) -> str:
    lines = ["## Stall attribution"]
    if stall is not None:
        total_blocked = sum(stall.blocked_steps.values())
        lines.append(f"blocked header-steps: {total_blocked}")
        if stall.blocked_at_edge:
            table = Table("", ["edge", "denied requests"])
            for e, c in stall.blocked_at_edge.most_common(top):
                table.add_row([e, c])
            lines.append("most contended edges:")
            lines.append(table.render().lstrip("\n"))
        if stall.blame:
            table = Table("", ["blocked", "behind", "steps"])
            for m, h, c in stall.top_blame(top):
                table.add_row([f"m{m}", f"m{h}", c])
            lines.append("worst blame pairs (head-of-line blocking):")
            lines.append(table.render().lstrip("\n"))
            chain = stall.blame_chain()
            if len(chain) > 1:
                lines.append(
                    "worst blame chain: " + " -> ".join(f"m{m}" for m in chain)
                )
    elif contention is not None and contention.denied.any():
        table = Table("", ["edge", "denied requests"])
        for e, c in contention.hottest(top):
            table.add_row([e, c])
        lines.append("most contended edges:")
        lines.append(table.render().lstrip("\n"))
    else:
        lines.append("no blocking observed")
    return "\n".join(lines)


def _throughput_section(thr: ThroughputCollector) -> str:
    lines = ["## Throughput"]
    steps = len(thr.steps)
    lines.append(
        f"delivered {thr.delivered_total} messages over {steps} observed "
        f"steps ({thr.mean_rate():.4f}/step)"
    )
    lines.append(f"peak injection backlog: {thr.peak_backlog} messages")
    return "\n".join(lines)
