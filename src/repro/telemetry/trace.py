"""Versioned event traces: record, save (JSONL / NPZ), load, replay.

A trace is the grant/block/release/complete event stream of one run
plus the run's static metadata.  Two interchangeable on-disk formats:

* ``.jsonl`` — line 1 is the meta header (with ``format`` and
  ``version``), then one line per event batch
  (``{"t": ..., "ev": "grant", "m": [...], "e": [...]}``), then a final
  ``{"ev": "end", ...}`` line.  Human-greppable.
* ``.npz`` — the same data as flat, compressed NumPy arrays (one
  ``<ev>_t / <ev>_m / <ev>_e`` triple per event type) plus the meta
  header as a JSON string.  Compact for large runs.

:func:`replay_check` is the integrity guarantee: for a wormhole-engine
trace it re-derives every completion time *from the grant events alone*
(granted worms move, draining worms move, everything else stalls — the
lock-step reduction) and asserts bit-exact agreement with the recorded
completions and, optionally, a :class:`~repro.sim.stats
.SimulationResult`.  A trace that passes replay is a faithful record of
the run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .probe import Probe, RunMeta

__all__ = [
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "Trace",
    "TraceError",
    "TraceRecorder",
    "load_trace",
    "replay_check",
    "write_trace",
]

TRACE_FORMAT = "repro-telemetry-trace"
TRACE_VERSION = 1

# Event types that carry (t, messages, edges) / (t, messages) payloads.
_EDGE_EVENTS = ("grant", "block", "release")
_MSG_EVENTS = ("complete", "deadlock")


class TraceError(ValueError):
    """Malformed trace file or a replay mismatch."""


@dataclass
class Trace:
    """An in-memory event trace.

    ``events[ev]`` maps each event type to parallel flat arrays:
    ``(t, messages, edges)`` for grant/block/release and
    ``(t, messages)`` for complete/deadlock.
    """

    meta: dict
    events: dict[str, tuple[np.ndarray, ...]] = field(default_factory=dict)
    end: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for ev in _EDGE_EVENTS:
            self.events.setdefault(
                ev,
                (
                    np.zeros(0, dtype=np.int64),
                    np.zeros(0, dtype=np.int64),
                    np.zeros(0, dtype=np.int64),
                ),
            )
        for ev in _MSG_EVENTS:
            self.events.setdefault(
                ev, (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
            )

    @property
    def steps(self) -> int:
        return int(self.end.get("steps", 0))

    def completion_times(self) -> np.ndarray:
        """Per-message completion step from the recorded complete events."""
        M = int(self.meta["num_messages"])
        completion = np.full(M, -1, dtype=np.int64)
        t, m = self.events["complete"]
        completion[m] = t
        trivial = np.asarray(self.meta["lengths"], dtype=np.int64) == 0
        completion[trivial] = np.asarray(self.meta["release"], dtype=np.int64)[
            trivial
        ]
        return completion


class TraceRecorder(Probe):
    """A probe that records the event stream for saving / replay."""

    def __init__(self) -> None:
        super().__init__()
        self._meta: dict = {}
        self._batches: dict[str, list[tuple]] = {
            ev: [] for ev in _EDGE_EVENTS + _MSG_EVENTS
        }
        self._end: dict = {}

    def on_run_start(self, meta: RunMeta) -> None:
        self._meta = {
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "simulator": meta.simulator,
            "num_messages": meta.num_messages,
            "num_edges": meta.num_edges,
            "num_virtual_channels": meta.num_virtual_channels,
            "lengths": meta.lengths.tolist(),
            "message_length": meta.message_length.tolist(),
            "release": meta.release.tolist(),
        }
        self._batches = {ev: [] for ev in _EDGE_EVENTS + _MSG_EVENTS}
        self._end = {}

    def on_grant(self, t: int, messages: np.ndarray, edges: np.ndarray) -> None:
        if messages.size:
            self._batches["grant"].append((t, messages.copy(), edges.copy()))

    def on_block(self, t: int, messages: np.ndarray, edges: np.ndarray) -> None:
        if messages.size:
            self._batches["block"].append((t, messages.copy(), edges.copy()))

    def on_release(self, t: int, messages: np.ndarray, edges: np.ndarray) -> None:
        if messages.size:
            self._batches["release"].append((t, messages.copy(), edges.copy()))

    def on_complete(self, t: int, messages: np.ndarray) -> None:
        if messages.size:
            self._batches["complete"].append((t, messages.copy()))

    def on_deadlock(self, t: int, pending: np.ndarray) -> None:
        self._batches["deadlock"].append((t, pending.copy()))

    def on_run_end(self, result) -> None:
        self._end = {
            "steps": int(result.steps_executed),
            "makespan": int(result.makespan),
            "deadlocked": bool(result.deadlocked),
            "hit_step_cap": bool(result.hit_step_cap),
        }

    # ------------------------------------------------------------------
    def to_trace(self) -> Trace:
        events: dict[str, tuple[np.ndarray, ...]] = {}
        for ev in _EDGE_EVENTS:
            batches = self._batches[ev]
            if batches:
                t = np.concatenate(
                    [np.full(m.size, bt, dtype=np.int64) for bt, m, _ in batches]
                )
                m = np.concatenate([m for _, m, _ in batches]).astype(np.int64)
                e = np.concatenate([e for _, _, e in batches]).astype(np.int64)
            else:
                t = m = e = np.zeros(0, dtype=np.int64)
            events[ev] = (t, m, e)
        for ev in _MSG_EVENTS:
            batches = self._batches[ev]
            if batches:
                t = np.concatenate(
                    [np.full(m.size, bt, dtype=np.int64) for bt, m in batches]
                )
                m = np.concatenate([m for _, m in batches]).astype(np.int64)
            else:
                t = m = np.zeros(0, dtype=np.int64)
            events[ev] = (t, m)
        return Trace(meta=dict(self._meta), events=events, end=dict(self._end))

    def save(self, path: str | Path) -> Path:
        """Write the trace; format chosen by suffix (.jsonl / .npz)."""
        return write_trace(self.to_trace(), path)


# ----------------------------------------------------------------------
def write_trace(trace: Trace, path: str | Path) -> Path:
    path = Path(path)
    if path.suffix == ".npz":
        payload: dict[str, np.ndarray] = {}
        for ev in _EDGE_EVENTS:
            t, m, e = trace.events[ev]
            payload[f"{ev}_t"], payload[f"{ev}_m"], payload[f"{ev}_e"] = t, m, e
        for ev in _MSG_EVENTS:
            t, m = trace.events[ev]
            payload[f"{ev}_t"], payload[f"{ev}_m"] = t, m
        header = dict(trace.meta)
        header["end"] = trace.end
        payload["meta_json"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        np.savez_compressed(path, **payload)
        return path
    # JSONL: group flat arrays back into per-(t, ev) batch lines, in
    # step order (event types at equal t are written grant, block,
    # release, complete, deadlock — replay does not depend on intra-step
    # order).
    lines = [json.dumps(trace.meta)]
    records: list[tuple[int, int, str, dict]] = []
    for rank, ev in enumerate(_EDGE_EVENTS):
        t, m, e = trace.events[ev]
        for step in np.unique(t) if t.size else ():
            sel = t == step
            records.append(
                (
                    int(step),
                    rank,
                    ev,
                    {"m": m[sel].tolist(), "e": e[sel].tolist()},
                )
            )
    for rank, ev in enumerate(_MSG_EVENTS, start=len(_EDGE_EVENTS)):
        t, m = trace.events[ev]
        for step in np.unique(t) if t.size else ():
            sel = t == step
            records.append((int(step), rank, ev, {"m": m[sel].tolist()}))
    for step, _, ev, payload in sorted(records, key=lambda r: (r[0], r[1])):
        lines.append(json.dumps({"t": step, "ev": ev, **payload}))
    lines.append(json.dumps({"ev": "end", **trace.end}))
    path.write_text("\n".join(lines) + "\n")
    return path


def load_trace(path: str | Path) -> Trace:
    path = Path(path)
    if path.suffix == ".npz":
        with np.load(path) as data:
            header = json.loads(bytes(data["meta_json"]).decode())
            _check_header(header, path)
            end = header.pop("end", {})
            events: dict[str, tuple[np.ndarray, ...]] = {}
            for ev in _EDGE_EVENTS:
                events[ev] = (
                    data[f"{ev}_t"].astype(np.int64),
                    data[f"{ev}_m"].astype(np.int64),
                    data[f"{ev}_e"].astype(np.int64),
                )
            for ev in _MSG_EVENTS:
                events[ev] = (
                    data[f"{ev}_t"].astype(np.int64),
                    data[f"{ev}_m"].astype(np.int64),
                )
        return Trace(meta=header, events=events, end=end)

    lines = path.read_text().splitlines()
    if not lines:
        raise TraceError(f"{path}: empty trace file")
    header = json.loads(lines[0])
    _check_header(header, path)
    batches: dict[str, list[tuple]] = {ev: [] for ev in _EDGE_EVENTS + _MSG_EVENTS}
    end: dict = {}
    for line in lines[1:]:
        if not line.strip():
            continue
        rec = json.loads(line)
        ev = rec.get("ev")
        if ev == "end":
            end = {k: v for k, v in rec.items() if k != "ev"}
        elif ev in _EDGE_EVENTS:
            batches[ev].append((rec["t"], rec["m"], rec["e"]))
        elif ev in _MSG_EVENTS:
            batches[ev].append((rec["t"], rec["m"]))
        else:
            raise TraceError(f"{path}: unknown event type {ev!r}")
    events = {}
    for ev in _EDGE_EVENTS:
        t_list: list[int] = []
        m_list: list[int] = []
        e_list: list[int] = []
        for t, m, e in batches[ev]:
            t_list.extend([t] * len(m))
            m_list.extend(m)
            e_list.extend(e)
        events[ev] = (
            np.asarray(t_list, dtype=np.int64),
            np.asarray(m_list, dtype=np.int64),
            np.asarray(e_list, dtype=np.int64),
        )
    for ev in _MSG_EVENTS:
        t_list, m_list = [], []
        for t, m in batches[ev]:
            t_list.extend([t] * len(m))
            m_list.extend(m)
        events[ev] = (
            np.asarray(t_list, dtype=np.int64),
            np.asarray(m_list, dtype=np.int64),
        )
    return Trace(meta=header, events=events, end=end)


def _check_header(header: dict, path: Path) -> None:
    if header.get("format") != TRACE_FORMAT:
        raise TraceError(f"{path}: not a {TRACE_FORMAT} file")
    if int(header.get("version", -1)) > TRACE_VERSION:
        raise TraceError(
            f"{path}: trace version {header.get('version')} is newer than "
            f"supported version {TRACE_VERSION}"
        )


# ----------------------------------------------------------------------
def replay_completions(trace: Trace) -> np.ndarray:
    """Re-derive per-message completion times from grant events alone.

    Only defined for the wormhole engine, whose lock-step reduction
    makes the full trajectory a function of the grant sequence: a worm
    moves in step ``t`` iff it was granted its next edge at ``t`` or it
    has entered all its edges and is draining.
    """
    if trace.meta.get("simulator") != "wormhole":
        raise TraceError(
            "replay is only defined for wormhole-engine traces "
            f"(got {trace.meta.get('simulator')!r})"
        )
    M = int(trace.meta["num_messages"])
    D = np.asarray(trace.meta["lengths"], dtype=np.int64)
    L = np.asarray(trace.meta["message_length"], dtype=np.int64)
    release = np.asarray(trace.meta["release"], dtype=np.int64)
    total_moves = L + D - 1

    grant_t, grant_m, _ = trace.events["grant"]
    order = np.argsort(grant_t, kind="stable")
    grant_t, grant_m = grant_t[order], grant_m[order]
    bounds = np.searchsorted(grant_t, np.arange(1, trace.steps + 2))

    k = np.zeros(M, dtype=np.int64)
    completion = np.full(M, -1, dtype=np.int64)
    done = D == 0
    completion[done] = release[done]

    granted = np.zeros(M, dtype=bool)
    for t in range(1, trace.steps + 1):
        lo, hi = bounds[t - 1], bounds[t]
        granted[:] = False
        if hi > lo:
            granted[grant_m[lo:hi]] = True
        movers = ~done & (release < t) & (granted | (k >= D))
        if not movers.any():
            continue
        k[movers] += 1
        newly = movers & (k == total_moves)
        completion[newly] = t
        done |= newly
    return completion


def replay_check(trace: Trace, result=None) -> np.ndarray:
    """Replay a trace and assert bit-exact agreement.

    Checks the re-derived completion times against the trace's recorded
    ``complete`` events and, when ``result`` (a
    :class:`~repro.sim.stats.SimulationResult`) is given, against its
    ``completion_times`` too.  Raises :class:`TraceError` on any
    mismatch; returns the re-derived completion array.
    """
    derived = replay_completions(trace)
    recorded = trace.completion_times()
    if not np.array_equal(derived, recorded):
        bad = np.flatnonzero(derived != recorded)
        raise TraceError(
            f"replay mismatch vs recorded completions for messages "
            f"{bad[:10].tolist()}: derived {derived[bad[:10]].tolist()} "
            f"!= recorded {recorded[bad[:10]].tolist()}"
        )
    if result is not None and not np.array_equal(
        derived, np.asarray(result.completion_times)
    ):
        bad = np.flatnonzero(derived != np.asarray(result.completion_times))
        raise TraceError(
            f"replay mismatch vs SimulationResult for messages "
            f"{bad[:10].tolist()}"
        )
    return derived
