"""Standard collectors: probes that accumulate run statistics.

These are the observables that buffer-aware wormhole analyses single
out: per-channel utilization, per-buffer occupancy, head-of-line
blocking attribution, and delivered throughput / injection backlog.
Each collector is independent; attach any subset via the simulators'
``telemetry=`` parameter.  Attaching collectors never changes a
simulation's outcome — they observe the event stream, they do not touch
simulator state or its random number generator.
"""

from __future__ import annotations

from collections import Counter, defaultdict

import numpy as np

from .probe import Probe, RunMeta

__all__ = [
    "BufferOccupancyCollector",
    "ChannelUtilizationCollector",
    "EdgeContentionCollector",
    "StallAttributionCollector",
    "ThroughputCollector",
    "TraceSnapshotCollector",
    "standard_collectors",
]


def standard_collectors() -> list[Probe]:
    """The default profiling bundle (what ``repro profile`` attaches)."""
    return [
        ChannelUtilizationCollector(),
        BufferOccupancyCollector(),
        StallAttributionCollector(),
        ThroughputCollector(),
    ]


class ChannelUtilizationCollector(Probe):
    """Per-edge flits-crossed totals and an optional sampled time series.

    For the wormhole engine the count is *exact*: in the lock-step
    reduction, a worm that makes move ``k`` transports its flits
    ``1..L`` across path edges ``k - L .. k - 1`` (clipped to the path),
    so the per-step crossings are re-derived from the movers alone.  For
    engines without the lock-step invariant (cut-through ownership,
    store-and-forward hops, adaptive routing) each ``on_grant`` is
    weighted by the engine's ``flits_per_grant`` hint instead.

    Attributes
    ----------
    flits_crossed:
        ``(num_edges,)`` total flits transported per physical edge.
    flits_per_step:
        List of ``(t, flits)`` — network-wide flits moved each step
        (wormhole engine only).
    samples:
        When ``sample_every > 0``, ``(t, flits_crossed.copy())``
        snapshots every ``sample_every`` steps — a per-edge time series
        at sampling resolution.
    """

    def __init__(self, sample_every: int = 0) -> None:
        super().__init__()
        self.sample_every = int(sample_every)
        self.flits_crossed: np.ndarray = np.zeros(0, dtype=np.int64)
        self.flits_per_step: list[tuple[int, int]] = []
        self.samples: list[tuple[int, np.ndarray]] = []

    def on_run_start(self, meta: RunMeta) -> None:
        self.flits_crossed = np.zeros(meta.num_edges, dtype=np.int64)
        self.flits_per_step = []
        self.samples = []
        self._exact = meta.simulator == "wormhole" and meta.paths is not None
        self._paths = meta.paths
        self._L = meta.message_length
        self._D = meta.lengths
        w = meta.extra.get("flits_per_grant", 1)
        self._grant_weight = np.asarray(w) if not np.isscalar(w) else w

    def on_grant(self, t: int, messages: np.ndarray, edges: np.ndarray) -> None:
        if self._exact:
            return  # exact flit spans are counted in on_step instead
        w = self._grant_weight
        weights = w[messages] if isinstance(w, np.ndarray) else w
        np.add.at(self.flits_crossed, edges, weights)

    def on_step(self, t: int, movers: np.ndarray, k: np.ndarray) -> None:
        if self._exact and movers.size:
            # Move number k transports flit j across edge k - j; the
            # per-worm span is [max(0, k - L), min(k - 1, D - 1)].
            k_new = k[movers]
            lo = np.maximum(k_new - self._L[movers], 0)
            hi = np.minimum(k_new - 1, self._D[movers] - 1)
            counts = hi - lo + 1
            total = int(counts.sum())
            if total:
                msg_rep = np.repeat(movers, counts)
                starts = np.repeat(lo, counts)
                offsets = np.arange(total) - np.repeat(
                    np.cumsum(counts) - counts, counts
                )
                crossed = self._paths[msg_rep, starts + offsets]
                np.add.at(self.flits_crossed, crossed, 1)
            self.flits_per_step.append((t, total))
        elif self._exact:
            self.flits_per_step.append((t, 0))
        if self.sample_every and t % self.sample_every == 0:
            self.samples.append((t, self.flits_crossed.copy()))

    # ------------------------------------------------------------------
    @property
    def total_flits(self) -> int:
        return int(self.flits_crossed.sum())

    def hottest(self, n: int = 5) -> list[tuple[int, int]]:
        """The ``n`` busiest edges as ``(edge_id, flits)``, descending."""
        if self.flits_crossed.size == 0:
            return []
        order = np.argsort(self.flits_crossed, kind="stable")[::-1][:n]
        return [
            (int(e), int(self.flits_crossed[e]))
            for e in order
            if self.flits_crossed[e] > 0
        ]


class BufferOccupancyCollector(Probe):
    """Per-edge buffer-slot occupancy histograms.

    Tracks its own occupancy image from grant/release events and, each
    step, adds the end-of-step occupancy of every edge into a
    ``(num_edges, B + 1)`` histogram — ``hist[e, c]`` is the number of
    steps edge ``e`` spent with exactly ``c`` occupied slots.
    """

    def __init__(self) -> None:
        super().__init__()
        self.hist: np.ndarray = np.zeros((0, 1), dtype=np.int64)
        self.occupancy: np.ndarray = np.zeros(0, dtype=np.int64)
        self.max_occupancy: np.ndarray = np.zeros(0, dtype=np.int64)
        self.steps_observed = 0

    def on_run_start(self, meta: RunMeta) -> None:
        E, B = meta.num_edges, meta.num_virtual_channels
        self._B = B
        self.hist = np.zeros((E, B + 1), dtype=np.int64)
        self.occupancy = np.zeros(E, dtype=np.int64)
        self.max_occupancy = np.zeros(E, dtype=np.int64)
        self.steps_observed = 0
        self._rows = np.arange(E)

    def on_grant(self, t: int, messages: np.ndarray, edges: np.ndarray) -> None:
        np.add.at(self.occupancy, edges, 1)

    def on_release(self, t: int, messages: np.ndarray, edges: np.ndarray) -> None:
        np.add.at(self.occupancy, edges, -1)

    def on_step(self, t: int, movers: np.ndarray, k: np.ndarray) -> None:
        levels = np.clip(self.occupancy, 0, self._B)
        self.hist[self._rows, levels] += 1
        np.maximum(self.max_occupancy, self.occupancy, out=self.max_occupancy)
        self.steps_observed += 1

    # ------------------------------------------------------------------
    def mean_occupancy(self) -> np.ndarray:
        """Per-edge mean occupied slots over the observed steps."""
        if self.steps_observed == 0:
            return np.zeros(self.hist.shape[0], dtype=np.float64)
        levels = np.arange(self.hist.shape[1], dtype=np.float64)
        return (self.hist * levels).sum(axis=1) / self.steps_observed

    def global_histogram(self) -> np.ndarray:
        """Fraction of edge-steps spent at each occupancy level."""
        totals = self.hist.sum(axis=0).astype(np.float64)
        denom = totals.sum()
        return totals / denom if denom else totals


class StallAttributionCollector(Probe):
    """Who blocked whom: the head-of-line blame graph.

    Every time a header is denied an edge, one unit of blame flows from
    the blocked message to each message currently holding a slot on that
    edge.  Holder sets are reconstructed from the grant/release event
    stream, so the collector works with any engine that emits both.
    """

    def __init__(self) -> None:
        super().__init__()
        self.blame: Counter[tuple[int, int]] = Counter()
        self.blocked_at_edge: Counter[int] = Counter()
        self.blocked_steps: Counter[int] = Counter()
        self._holders: defaultdict[int, set[int]] = defaultdict(set)

    def on_run_start(self, meta: RunMeta) -> None:
        self.blame = Counter()
        self.blocked_at_edge = Counter()
        self.blocked_steps = Counter()
        self._holders = defaultdict(set)

    def on_grant(self, t: int, messages: np.ndarray, edges: np.ndarray) -> None:
        for m, e in zip(messages.tolist(), edges.tolist()):
            self._holders[e].add(m)

    def on_release(self, t: int, messages: np.ndarray, edges: np.ndarray) -> None:
        for m, e in zip(messages.tolist(), edges.tolist()):
            self._holders[e].discard(m)

    def on_block(self, t: int, messages: np.ndarray, edges: np.ndarray) -> None:
        for m, e in zip(messages.tolist(), edges.tolist()):
            if e < 0:
                continue
            self.blocked_at_edge[e] += 1
            self.blocked_steps[m] += 1
            for holder in self._holders[e]:
                if holder != m:
                    self.blame[(m, holder)] += 1

    # ------------------------------------------------------------------
    def top_blame(self, n: int = 5) -> list[tuple[int, int, int]]:
        """Worst ``(blocked, holder, steps)`` pairs, descending."""
        return [(m, h, c) for (m, h), c in self.blame.most_common(n)]

    def blame_chain(self, start: int | None = None, max_len: int = 8) -> list[int]:
        """Follow the heaviest blame edges from the most-blocked worm.

        Returns a message-id chain ``[a, b, c, ...]`` meaning "``a`` was
        mostly blocked behind ``b``, which was mostly blocked behind
        ``c``, ..." — the dominant head-of-line convoy.  Stops at a
        cycle, at a message that was never blocked, or at ``max_len``.
        """
        if start is None:
            if not self.blocked_steps:
                return []
            start = self.blocked_steps.most_common(1)[0][0]
        chain = [start]
        seen = {start}
        while len(chain) < max_len:
            cur = chain[-1]
            culprits = [
                (c, h) for (m, h), c in self.blame.items() if m == cur
            ]
            if not culprits:
                break
            _, nxt = max(culprits)
            if nxt in seen:
                break
            chain.append(nxt)
            seen.add(nxt)
        return chain


class ThroughputCollector(Probe):
    """Delivered flits/messages per step and the injection backlog.

    ``backlog[i]`` counts messages that are released but have not yet
    entered the network at step ``steps[i]`` — the paper-model analogue
    of "the injection buffers are filling up".
    """

    def __init__(self) -> None:
        super().__init__()
        self.steps: list[int] = []
        self.backlog: list[int] = []
        self.delivered_at: Counter[int] = Counter()
        self.delivered_total = 0

    def on_run_start(self, meta: RunMeta) -> None:
        self.steps = []
        self.backlog = []
        self.delivered_at = Counter()
        self.delivered_total = 0
        self._release = meta.release
        self._D = meta.lengths
        self._L = meta.message_length

    def on_complete(self, t: int, messages: np.ndarray) -> None:
        self.delivered_at[t] += int(messages.size)
        self.delivered_total += int(messages.size)

    def on_step(self, t: int, movers: np.ndarray, k: np.ndarray) -> None:
        # Released but not injected: k == 0 means the header never moved
        # (delivered nontrivial messages have k >= 1, so no false hits).
        waiting = (self._release < t) & (k == 0) & (self._D > 0)
        self.steps.append(t)
        self.backlog.append(int(waiting.sum()))

    # ------------------------------------------------------------------
    def delivered_series(self) -> np.ndarray:
        """Deliveries aligned with :attr:`steps` (one entry per step)."""
        return np.asarray(
            [self.delivered_at.get(t, 0) for t in self.steps], dtype=np.int64
        )

    @property
    def peak_backlog(self) -> int:
        return max(self.backlog) if self.backlog else 0

    def mean_rate(self) -> float:
        """Delivered messages per observed step."""
        return self.delivered_total / len(self.steps) if self.steps else 0.0


class EdgeContentionCollector(Probe):
    """Per-edge count of denied header requests (a hotspot map).

    This reproduces the array previously returned by the wormhole
    simulator's ``record_contention=True`` in
    ``result.extra["edge_contention"]``.
    """

    def __init__(self) -> None:
        super().__init__()
        self.denied: np.ndarray = np.zeros(0, dtype=np.int64)

    def on_run_start(self, meta: RunMeta) -> None:
        self.denied = np.zeros(meta.num_edges, dtype=np.int64)

    def on_block(self, t: int, messages: np.ndarray, edges: np.ndarray) -> None:
        valid = edges >= 0
        np.add.at(self.denied, edges[valid], 1)

    def hottest(self, n: int = 5) -> list[tuple[int, int]]:
        if self.denied.size == 0:
            return []
        order = np.argsort(self.denied, kind="stable")[::-1][:n]
        return [(int(e), int(self.denied[e])) for e in order if self.denied[e] > 0]


class TraceSnapshotCollector(Probe):
    """Per-step completed-move snapshots — the spacetime-diagram input.

    Reproduces the ``(steps, M)`` matrix previously returned by the
    wormhole simulator's ``record_trace=True`` (``-1`` before release),
    consumable by :func:`repro.analysis.render.render_spacetime`.
    """

    def __init__(self) -> None:
        super().__init__()
        self._rows: list[np.ndarray] = []
        self._release: np.ndarray | None = None

    def on_run_start(self, meta: RunMeta) -> None:
        self._rows = []
        self._release = meta.release

    def on_step(self, t: int, movers: np.ndarray, k: np.ndarray) -> None:
        self._rows.append(np.where(self._release < t, k, -1))

    @property
    def matrix(self) -> np.ndarray:
        """The ``(steps, M)`` snapshot matrix (empty-safe)."""
        return (
            np.vstack(self._rows)
            if self._rows
            else np.zeros((0, 0), dtype=np.int64)
        )
