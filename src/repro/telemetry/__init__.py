"""``repro.telemetry`` — instrumentation, tracing, and watchdogs.

A pluggable observability layer for every simulator in the package:

* :mod:`~repro.telemetry.probe` — the :class:`Probe` event protocol and
  the :class:`ProbeSet` dispatcher (a guaranteed no-op when empty);
* :mod:`~repro.telemetry.collectors` — channel utilization, buffer
  occupancy, stall attribution (head-of-line blame), throughput /
  backlog, plus the legacy trace-snapshot and edge-contention maps;
* :mod:`~repro.telemetry.metrics` — generic cross-request service
  metrics (counters, depth gauges, occupancy histograms, latency
  quantiles) backing the :mod:`repro.service` ``stats`` endpoint;
* :mod:`~repro.telemetry.trace` — versioned JSONL / NPZ event traces
  with a bit-exact :func:`replay_check`;
* :mod:`~repro.telemetry.watchdog` — stall / low-delivery-rate alerts
  that annotate (or abort) a run;
* :mod:`~repro.telemetry.report` — text/markdown rendering of a
  collected run.

Usage::

    from repro import WormholeSimulator
    from repro.telemetry import Watchdog, render_report, standard_collectors

    probes = standard_collectors() + [Watchdog()]
    result = WormholeSimulator(net, B).run(paths, L, telemetry=probes)
    print(render_report(probes, result))
"""

from .collectors import (
    BufferOccupancyCollector,
    ChannelUtilizationCollector,
    EdgeContentionCollector,
    StallAttributionCollector,
    ThroughputCollector,
    TraceSnapshotCollector,
    standard_collectors,
)
from .metrics import (
    DepthGauge,
    EventCounter,
    LatencyRecorder,
    SizeHistogram,
    StateGauge,
    quantile,
)
from .probe import Probe, ProbeSet, RunMeta
from .report import render_report
from .trace import (
    TRACE_FORMAT,
    TRACE_VERSION,
    Trace,
    TraceError,
    TraceRecorder,
    load_trace,
    replay_check,
    write_trace,
)
from .watchdog import Watchdog

__all__ = [
    "BufferOccupancyCollector",
    "ChannelUtilizationCollector",
    "DepthGauge",
    "EdgeContentionCollector",
    "EventCounter",
    "LatencyRecorder",
    "Probe",
    "ProbeSet",
    "RunMeta",
    "SizeHistogram",
    "StallAttributionCollector",
    "StateGauge",
    "ThroughputCollector",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "Trace",
    "TraceError",
    "TraceRecorder",
    "TraceSnapshotCollector",
    "Watchdog",
    "load_trace",
    "quantile",
    "render_report",
    "replay_check",
    "standard_collectors",
    "write_trace",
]
