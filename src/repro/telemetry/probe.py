"""The probe protocol: pluggable instrumentation for the simulators.

A :class:`Probe` receives vectorized event callbacks from a simulator's
step loop.  Events carry NumPy arrays (message ids, physical edge ids)
rather than per-message Python calls, so an attached probe costs one
function call per event *batch* per step — and an **empty** probe set
costs nothing at all: :meth:`ProbeSet.coerce` returns ``None`` when no
probes are attached, and every simulator guards its dispatch sites with
a single ``if probes is not None`` so the vectorized hot loop performs
no probe dispatch, builds no event objects, and allocates nothing extra.

Event vocabulary (all optional; a probe overrides what it needs):

``on_run_start(meta)``
    Once before the first step, with a :class:`RunMeta` describing the
    run (message count, paths, lengths, release times, ...).
``on_step(t, movers, k)``
    Once per simulated step after all state updates: ``movers`` is the
    array of message ids that advanced this step and ``k`` the full
    per-message progress array (completed moves / hops, simulator
    defined).
``on_grant(t, messages, edges)``
    Header flits granted a virtual channel / buffer slot / edge
    ownership this step (parallel arrays).
``on_block(t, messages, edges)``
    Header flits denied the edge they wanted; an edge id of ``-1``
    means the wanted edge could not be attributed.
``on_release(t, messages, edges)``
    Buffer slots vacated (tail left the edge, or delivery freed the
    final edge).
``on_complete(t, messages)``
    Messages fully delivered this step.
``on_deadlock(t, pending)``
    The simulator proved no further progress is possible; ``pending``
    holds the undelivered message ids.
``on_run_end(result)``
    Once after the run with the :class:`~repro.sim.stats
    .SimulationResult`; probes may annotate ``result.extra``.

A probe may also call :meth:`Probe.request_abort` (typically from
``on_step``); the simulator then stops at the end of the current step
and annotates ``result.extra["telemetry_abort"]`` — this is how the
:class:`~repro.telemetry.watchdog.Watchdog` turns a livelock into a
diagnosed early return instead of a silent crawl to ``max_steps``.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Probe", "ProbeSet", "RunMeta"]


@dataclass
class RunMeta:
    """Static description of one simulation run, passed to probes.

    Attributes
    ----------
    simulator:
        Which engine is running: ``"wormhole"``, ``"cut_through"``,
        ``"store_forward"``, ``"adaptive"``, ...  Collectors use this to
        pick the right accounting (e.g. exact flit spans are only
        derivable from the wormhole lock-step reduction).
    num_messages / num_edges / num_virtual_channels:
        Problem dimensions (``B`` is buffer slots per edge).
    paths:
        Padded ``(M, max_D)`` edge-id matrix (``-1`` padding), or
        ``None`` when routes are chosen online (adaptive routing).
    lengths:
        Per-message path length ``D_m``.
    message_length:
        Per-message ``L`` in flits.
    release:
        Per-message release step in the simulator's native step unit.
    extra:
        Engine-specific hints, e.g. ``flits_per_grant`` (flits that an
        ``on_grant`` event implies will cross the edge) or
        ``flit_steps_per_step`` (store-and-forward message steps).
    """

    simulator: str
    num_messages: int
    num_edges: int
    num_virtual_channels: int
    paths: np.ndarray | None
    lengths: np.ndarray
    message_length: np.ndarray
    release: np.ndarray
    extra: dict = field(default_factory=dict)


class Probe:
    """Base class / protocol with no-op implementations of every event.

    Subclasses override only the callbacks they need; :class:`ProbeSet`
    dispatches each event exclusively to the probes that override it, so
    unused callbacks cost nothing even when other probes are attached.
    """

    def __init__(self) -> None:
        self.abort_reason: str | None = None

    def request_abort(self, reason: str) -> None:
        """Ask the simulator to stop at the end of the current step."""
        self.abort_reason = reason

    # -- lifecycle -----------------------------------------------------
    def on_run_start(self, meta: RunMeta) -> None:  # pragma: no cover
        pass

    def on_run_end(self, result) -> None:  # pragma: no cover
        pass

    # -- per-step events ----------------------------------------------
    def on_step(self, t: int, movers: np.ndarray, k: np.ndarray) -> None:
        pass

    def on_grant(self, t: int, messages: np.ndarray, edges: np.ndarray) -> None:
        pass

    def on_block(self, t: int, messages: np.ndarray, edges: np.ndarray) -> None:
        pass

    def on_release(self, t: int, messages: np.ndarray, edges: np.ndarray) -> None:
        pass

    def on_complete(self, t: int, messages: np.ndarray) -> None:
        pass

    def on_deadlock(self, t: int, pending: np.ndarray) -> None:
        pass


_EVENTS = (
    "on_run_start",
    "on_run_end",
    "on_step",
    "on_grant",
    "on_block",
    "on_release",
    "on_complete",
    "on_deadlock",
)


class ProbeSet:
    """A set of probes plus per-event dispatch lists.

    The dispatch list for each event contains only the probes whose
    class actually overrides that callback, so dispatching an event a
    probe ignores is skipped entirely.

    Simulators never hold an empty ``ProbeSet``: they call
    :meth:`coerce`, which returns ``None`` when nothing is attached, and
    take the fully uninstrumented code path.
    """

    def __init__(self, probes: Iterable[Probe] = ()) -> None:
        self._probes: list[Probe] = list(probes)
        for p in self._probes:
            if not all(callable(getattr(p, ev, None)) for ev in _EVENTS):
                raise TypeError(
                    f"{type(p).__name__} does not implement the Probe protocol"
                )
        self._bind()

    def _bind(self) -> None:
        self._dispatch: dict[str, list[Probe]] = {}
        for ev in _EVENTS:
            base = getattr(Probe, ev)
            self._dispatch[ev] = [
                p for p in self._probes if getattr(type(p), ev, base) is not base
            ]

    # ------------------------------------------------------------------
    @classmethod
    def coerce(
        cls,
        telemetry: "ProbeSet | Probe | Iterable[Probe] | None",
        extra: Iterable[Probe] = (),
    ) -> "ProbeSet | None":
        """Normalize a ``telemetry=`` argument; ``None`` when empty.

        Accepts ``None``, a single :class:`Probe`, an iterable of
        probes, or a :class:`ProbeSet`; ``extra`` probes (e.g. legacy
        keyword shims) are appended.  The caller's objects are never
        mutated — a fresh set is built.
        """
        if telemetry is None:
            probes: list[Probe] = []
        elif isinstance(telemetry, ProbeSet):
            probes = list(telemetry)
        elif isinstance(telemetry, Probe):
            probes = [telemetry]
        else:
            probes = list(telemetry)
        probes.extend(extra)
        return cls(probes) if probes else None

    # ------------------------------------------------------------------
    def add(self, probe: Probe) -> None:
        self._probes.append(probe)
        self._bind()

    def __iter__(self):
        return iter(self._probes)

    def __len__(self) -> int:
        return len(self._probes)

    def __bool__(self) -> bool:
        return bool(self._probes)

    def find(self, probe_type: type) -> "Probe | None":
        """First attached probe of the given type, or ``None``."""
        for p in self._probes:
            if isinstance(p, probe_type):
                return p
        return None

    # -- abort plumbing ------------------------------------------------
    @property
    def abort_reason(self) -> str | None:
        for p in self._probes:
            reason = getattr(p, "abort_reason", None)
            if reason is not None:
                return reason
        return None

    @property
    def aborted(self) -> bool:
        return self.abort_reason is not None

    # -- dispatchers ---------------------------------------------------
    def on_run_start(self, meta: RunMeta) -> None:
        for p in self._dispatch["on_run_start"]:
            p.on_run_start(meta)

    def on_run_end(self, result) -> None:
        for p in self._dispatch["on_run_end"]:
            p.on_run_end(result)

    def on_step(self, t: int, movers: np.ndarray, k: np.ndarray) -> None:
        for p in self._dispatch["on_step"]:
            p.on_step(t, movers, k)

    def on_grant(self, t: int, messages: np.ndarray, edges: np.ndarray) -> None:
        for p in self._dispatch["on_grant"]:
            p.on_grant(t, messages, edges)

    def on_block(self, t: int, messages: np.ndarray, edges: np.ndarray) -> None:
        for p in self._dispatch["on_block"]:
            p.on_block(t, messages, edges)

    def on_release(self, t: int, messages: np.ndarray, edges: np.ndarray) -> None:
        for p in self._dispatch["on_release"]:
            p.on_release(t, messages, edges)

    def on_complete(self, t: int, messages: np.ndarray) -> None:
        for p in self._dispatch["on_complete"]:
            p.on_complete(t, messages)

    def on_deadlock(self, t: int, pending: np.ndarray) -> None:
        for p in self._dispatch["on_deadlock"]:
            p.on_deadlock(t, pending)
