"""Generic service metrics: counters, gauges, histograms, latencies.

The probe collectors in :mod:`repro.telemetry.collectors` observe one
simulation run from the inside.  The :mod:`repro.service` layer needs
the complementary view — aggregate statistics *across* requests: how
deep the admission queue runs, how full the lockstep batches are, how
many requests were rejected, and what the response-latency tail looks
like.  These collectors are deliberately tiny and dependency-free
(stdlib only) so the asyncio server can update them on its hot path,
and every one renders itself to a JSON-safe ``snapshot()`` that the
service's ``stats`` endpoint returns verbatim.

All collectors are single-threaded by design: the asyncio event loop is
the only writer, so no locking is needed.
"""

from __future__ import annotations

from collections import Counter

__all__ = [
    "DepthGauge",
    "EventCounter",
    "LatencyRecorder",
    "SizeHistogram",
    "StateGauge",
    "quantile",
]


def quantile(values: list[float], q: float) -> float:
    """Linear-interpolated quantile of an unsorted sample (empty -> 0).

    ``q`` is a fraction in ``[0, 1]``; matches ``numpy.percentile``'s
    default (linear) method without requiring numpy.
    """
    if not values:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile fraction must be in [0, 1], got {q}")
    ordered = sorted(values)
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class EventCounter:
    """A fixed set of named monotonic counters.

    The names are declared up front so the snapshot always carries every
    key (dashboards and tests never have to guard missing fields) and a
    typo'd ``bump`` is an error rather than a silently new series.
    """

    def __init__(self, *names: str) -> None:
        self._counts: dict[str, int] = {name: 0 for name in names}

    def bump(self, name: str, n: int = 1) -> None:
        if name not in self._counts:
            raise KeyError(f"unknown counter {name!r}")
        self._counts[name] += n

    def __getitem__(self, name: str) -> int:
        return self._counts[name]

    def snapshot(self) -> dict[str, int]:
        return dict(self._counts)


class DepthGauge:
    """A current-value gauge that remembers its high-water mark."""

    def __init__(self) -> None:
        self.value = 0
        self.peak = 0

    def set(self, value: int) -> None:
        self.value = int(value)
        if self.value > self.peak:
            self.peak = self.value

    def snapshot(self) -> dict[str, int]:
        return {"depth": self.value, "peak": self.peak}


class StateGauge:
    """A named-state gauge that counts transitions.

    Tracks which discrete state a component is in (e.g. an execution
    backend running as ``"process"`` vs degraded to ``"inline"``) and
    how many times it has changed state — a cheap way to surface "this
    fell over and recovered N times" without keeping an event log.
    """

    def __init__(self, initial: str) -> None:
        self.state = str(initial)
        self.transitions = 0

    def set(self, state: str) -> None:
        state = str(state)
        if state != self.state:
            self.state = state
            self.transitions += 1

    def snapshot(self) -> dict:
        return {"state": self.state, "transitions": self.transitions}


class SizeHistogram:
    """Integer-size occupancy histogram (e.g. trials per lockstep batch)."""

    def __init__(self) -> None:
        self.counts: Counter[int] = Counter()

    def record(self, size: int) -> None:
        self.counts[int(size)] += 1

    @property
    def count(self) -> int:
        return sum(self.counts.values())

    @property
    def total(self) -> int:
        return sum(size * n for size, n in self.counts.items())

    def mean(self) -> float:
        n = self.count
        return self.total / n if n else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean_occupancy": round(self.mean(), 4),
            "occupancy_hist": {
                str(size): n for size, n in sorted(self.counts.items())
            },
        }


class LatencyRecorder:
    """A latency sample with mean / p50 / p95 / p99 / max summaries.

    Keeps at most ``max_samples`` of the most recent observations (a
    simple bounded window, not a reservoir) so a long-running service
    cannot grow without bound; the running count and mean cover the full
    history.
    """

    def __init__(self, max_samples: int = 4096) -> None:
        self.max_samples = int(max_samples)
        self._window: list[float] = []
        self._count = 0
        self._sum = 0.0

    def record(self, seconds: float) -> None:
        self._count += 1
        self._sum += seconds
        self._window.append(seconds)
        if len(self._window) > self.max_samples:
            del self._window[: len(self._window) - self.max_samples]

    @property
    def count(self) -> int:
        return self._count

    def summary(self) -> dict[str, float]:
        ms = [s * 1000.0 for s in self._window]
        mean = (self._sum / self._count * 1000.0) if self._count else 0.0
        return {
            "count": self._count,
            "mean": round(mean, 3),
            "p50": round(quantile(ms, 0.50), 3),
            "p95": round(quantile(ms, 0.95), 3),
            "p99": round(quantile(ms, 0.99), 3),
            "max": round(max(ms), 3) if ms else 0.0,
        }
