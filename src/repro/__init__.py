"""Reproduction of Cole, Maggs & Sitaraman (SPAA 1996 / JCSS 2001):
*On the Benefit of Supporting Virtual Channels in Wormhole Routers*.

The package builds the paper's machine model — flit-level wormhole
routing with ``B`` virtual channels per physical channel — plus every
substrate the analysis touches: butterfly/Benes/mesh/hypercube/etc.
topologies, store-and-forward and virtual cut-through baselines, circuit
switching, the LLL-based offline scheduler of Theorem 2.1.6, the hard
instance of Theorem 2.2.1, and the randomized butterfly algorithm of
Section 3 with its lower-bound machinery.

Quickstart
----------
>>> import numpy as np
>>> from repro import Butterfly, WormholeSimulator
>>> bf = Butterfly(8)
>>> edges = bf.path_edges_batch(np.arange(8), np.arange(8)[::-1])
>>> sim = WormholeSimulator(bf, num_virtual_channels=2)
>>> result = sim.run([list(r) for r in edges], message_length=4)
>>> bool(result.all_delivered)
True
"""

from . import exec  # noqa: A004 - the subpackage is deliberately ``repro.exec``
from . import telemetry
from .analysis.balls_bins import lemma_3_2_3_bound, prob_no_bin_exceeds
from .facade import MODELS, SIMULATE_MODES, SimResult, simulate
from .analysis.lll import chernoff_upper_tail, lll_condition
from .analysis.fitting import PowerLawFit, fit_power_law, loglog_slope
from .analysis.render import render_butterfly, render_route, render_spacetime
from .analysis.tables import Table
from .core import bounds
from .core.butterfly_lower_bound import (
    OnePassOutcome,
    collides,
    one_pass_route,
    phase_partition,
    subset_collision_rate,
    truncated_paths,
)
from .core.benes_routing import route_permutation_benes, route_q_relation_benes
from .core.butterfly_routing import (
    ButterflyRouter,
    ButterflyRoutingResult,
    arbitrate_levels,
)
from .core.coloring import (
    MessageEdgeIncidence,
    multiplex_size,
    reduce_multiplex_size,
)
from .core.hypercube_routing import (
    HypercubeRoutingResult,
    route_hypercube_permutation,
)
from .core.leveled import leveled_bound, random_delay_release, route_leveled_greedy
from .core.multibutterfly_routing import MultibutterflyRouter
from .core.online_routing import online_window, route_online_random_delays
from .core.lower_bound import (
    HardInstance,
    build_hard_instance,
    hard_instance_lower_bound,
    max_m_prime,
)
from .core.schedule import ColorClassSchedule, execute_schedule
from .core.scheduler import (
    ScheduleBuild,
    lll_schedule,
    naive_coloring_schedule,
)
from .network.benes import Benes, waksman_paths
from .network.butterfly import Butterfly, wrapped_butterfly
from .network.debruijn import DeBruijn, ShuffleExchange, debruijn_path
from .network.graph import Network, NetworkError
from .network.hypercube import Hypercube, bit_fixing_path
from .network.mesh import KAryNCube, dimension_order_path
from .network.multibutterfly import Multibutterfly
from .network.random_networks import (
    chain_bundle,
    layered_network,
    random_walk_paths,
)
from .network.tree import CompleteTree, tree_path
from .routing.decompose import decompose_q_relation
from .routing.paths import Path, congestion, dilation, path_set_stats
from .routing.problems import (
    RoutingInstance,
    bit_reversal_permutation,
    random_destinations,
    random_permutation,
    random_q_relation,
    transpose_permutation,
)
from .routing.select import select_paths
from .routing.shortest import bfs_path, shortest_paths
from .routing.valiant import valiant_path, valiant_paths
from .sim.adaptive import AdaptiveMeshRouter, AdaptiveRunResult
from .sim.circuit import CircuitSwitchResult, circuit_switch_butterfly
from .sim.continuous import ContinuousResult, ContinuousWormholeSimulator
from .sim.cut_through import CutThroughSimulator
from .sim.deadlock import (
    channel_dependency_graph,
    dateline_vc_assignment,
    is_deadlock_free,
)
from .sim.restricted import RestrictedWormholeSimulator
from .sim.stats import SimulationResult
from .sim.store_forward import StoreForwardSimulator
from .sim.wormhole import WormholeSimulator

# Imported last: scenarios build on the facade and the sweep registry,
# and importing them registers every ``scenario:<name>`` sweep workload
# (including in the process-backend workers, which import ``repro`` when
# they unpickle a trial spec).
from . import fuzz  # noqa: E402
from . import scenarios  # noqa: E402

__version__ = "1.0.0"

__all__ = [
    "AdaptiveMeshRouter",
    "AdaptiveRunResult",
    "Benes",
    "Butterfly",
    "ButterflyRouter",
    "ButterflyRoutingResult",
    "CircuitSwitchResult",
    "ColorClassSchedule",
    "CompleteTree",
    "ContinuousResult",
    "ContinuousWormholeSimulator",
    "CutThroughSimulator",
    "DeBruijn",
    "HardInstance",
    "Hypercube",
    "HypercubeRoutingResult",
    "KAryNCube",
    "MODELS",
    "MessageEdgeIncidence",
    "Multibutterfly",
    "MultibutterflyRouter",
    "Network",
    "NetworkError",
    "OnePassOutcome",
    "Path",
    "PowerLawFit",
    "RestrictedWormholeSimulator",
    "RoutingInstance",
    "SIMULATE_MODES",
    "ScheduleBuild",
    "ShuffleExchange",
    "SimResult",
    "SimulationResult",
    "StoreForwardSimulator",
    "Table",
    "WormholeSimulator",
    "arbitrate_levels",
    "bfs_path",
    "bit_fixing_path",
    "bit_reversal_permutation",
    "bounds",
    "build_hard_instance",
    "chain_bundle",
    "channel_dependency_graph",
    "chernoff_upper_tail",
    "circuit_switch_butterfly",
    "collides",
    "congestion",
    "dateline_vc_assignment",
    "debruijn_path",
    "decompose_q_relation",
    "dilation",
    "dimension_order_path",
    "exec",
    "execute_schedule",
    "fit_power_law",
    "fuzz",
    "hard_instance_lower_bound",
    "is_deadlock_free",
    "layered_network",
    "lemma_3_2_3_bound",
    "leveled_bound",
    "lll_condition",
    "lll_schedule",
    "loglog_slope",
    "max_m_prime",
    "multiplex_size",
    "naive_coloring_schedule",
    "one_pass_route",
    "online_window",
    "path_set_stats",
    "phase_partition",
    "prob_no_bin_exceeds",
    "random_delay_release",
    "random_destinations",
    "random_permutation",
    "random_q_relation",
    "random_walk_paths",
    "reduce_multiplex_size",
    "render_butterfly",
    "render_route",
    "render_spacetime",
    "route_hypercube_permutation",
    "route_leveled_greedy",
    "route_online_random_delays",
    "route_permutation_benes",
    "route_q_relation_benes",
    "scenarios",
    "select_paths",
    "shortest_paths",
    "simulate",
    "subset_collision_rate",
    "telemetry",
    "transpose_permutation",
    "tree_path",
    "truncated_paths",
    "valiant_path",
    "valiant_paths",
    "waksman_paths",
    "wrapped_butterfly",
]
