#!/usr/bin/env python
"""Quickstart: route a permutation through a butterfly wormhole router.

Builds an 8-input butterfly (the paper's Fig. 1), routes the bit-reversal
permutation as 8 worms of 16 flits each, and shows how virtual channels
change the outcome: with B = 1 worms serialize wherever their greedy
paths share an edge; with B = 2 most conflicts vanish.

Everything goes through :func:`repro.simulate`, the unified facade —
one call per (model, B) point, bit-identical to constructing the
simulator directly.

Run:  python examples/quickstart.py
"""

from repro import Butterfly, Table, bit_reversal_permutation, simulate

N = 8
L = 16  # flits per message


def main() -> None:
    bf = Butterfly(N)
    inst = bit_reversal_permutation(N)
    # Each message follows the butterfly's unique greedy (bit-fixing) path.
    edges = bf.path_edges_batch(inst.sources, inst.dests)
    paths = [list(row) for row in edges]

    table = Table(
        f"Bit-reversal on an {N}-input butterfly, L = {L} flits "
        f"(unobstructed time would be {L + bf.depth - 1})",
        [
            "virtual channels B",
            "analytic lower",
            "makespan (flit steps)",
            "analytic upper",
            "blocked flit steps",
        ],
    )
    for B in (1, 2, 4):
        # The estimate tier answers from closed form, no simulation:
        # result.envelope brackets whatever the exact run will measure.
        bounds = simulate(
            (bf, paths),
            model="wormhole",
            B=B,
            mode="estimate",
            message_length=L,
        )
        result = simulate(
            (bf, paths), model="wormhole", B=B, seed=0, message_length=L
        )
        assert result.mode == "exact" and result.all_delivered
        assert bounds.lower <= result.makespan <= bounds.upper
        table.add_row(
            [
                B,
                bounds.lower,
                result.makespan,
                bounds.upper,
                result.total_blocked_steps,
            ]
        )
    print(table.render())
    print()
    print(
        "Adding virtual channels removes header blocking: the makespan "
        "approaches the contention-free floor L + D - 1 — the estimate "
        "tier's lower envelope."
    )


if __name__ == "__main__":
    main()
