#!/usr/bin/env python
"""Scenario: a Cray-T3D-style torus interconnect with dateline VCs.

The paper's introduction motivates wormhole routing with the machines of
the era — iWarp (4 virtual channels per link), the J-Machine (2), the
Cray T3D torus.  This example builds an 8x8 torus, routes random traffic
with dimension-order (e-cube) routing, and demonstrates the *original*
reason virtual channels exist (Dally-Seitz):

1. the torus rings make the channel dependency graph cyclic, and a
   greedy single-channel wormhole run can actually deadlock;
2. the dateline virtual-channel assignment provably breaks the cycles
   (we check the CDG is acyclic);
3. with 2+ virtual channels the same traffic routes deadlock-free, and
   extra channels keep cutting latency.

Run:  python examples/multiprocessor_interconnect.py
"""

import numpy as np

from repro import (
    KAryNCube,
    Table,
    WormholeSimulator,
    dateline_vc_assignment,
    dimension_order_path,
    is_deadlock_free,
)
from repro.routing.paths import congestion, dilation, paths_from_node_walks
from repro.sim.stats import summarize_latencies

K, DIMS = 8, 2
MESSAGES = 200
L = 12


def main() -> None:
    rng = np.random.default_rng(7)
    cube = KAryNCube(k=K, n=DIMS, wrap=True)
    net = cube.network

    demands = [
        (int(rng.integers(cube.num_nodes)), int(rng.integers(cube.num_nodes)))
        for _ in range(MESSAGES)
    ]
    walks = [dimension_order_path(cube, s, d) for s, d in demands]
    paths = paths_from_node_walks(net, walks)
    print(
        f"{MESSAGES} messages on an {K}x{K} torus: congestion C = "
        f"{congestion(paths)}, dilation D = {dilation(paths)}, L = {L}"
    )

    # 1-2. Deadlock analysis a la Dally-Seitz.
    print()
    print("Channel dependency graph (Dally-Seitz):")
    print(f"  single channel : deadlock-free = {is_deadlock_free(paths)}")
    vc_of = dateline_vc_assignment(cube)
    print(f"  dateline VCs   : deadlock-free = {is_deadlock_free(paths, vc_of)}")

    # 3. Simulate with increasing numbers of virtual channels.
    table = Table(
        "Greedy wormhole routing on the torus",
        ["B", "deadlocked", "delivered", "makespan", "mean latency", "p95 latency"],
    )
    for B in (1, 2, 4):
        sim = WormholeSimulator(net, num_virtual_channels=B, seed=1)
        res = sim.run(paths, message_length=L)
        stats = summarize_latencies(res.latencies())
        table.add_row(
            [
                B,
                res.deadlocked,
                f"{res.num_delivered}/{MESSAGES}",
                res.makespan,
                stats["mean"],
                stats["p95"],
            ]
        )
    print()
    print(table.render())
    print()
    print(
        "The iWarp shipped with 4 virtual channels per link and the "
        "J-Machine with 2 — the rows above show why the designers paid "
        "for them."
    )


if __name__ == "__main__":
    main()
