#!/usr/bin/env python
"""Scenario: a butterfly fabric under continuous load.

Batch bounds tell you how fast a burst clears; operators care about the
*sustained* rate a fabric holds without queues growing.  This example
injects Bernoulli traffic (random destinations) into a butterfly at
increasing per-input rates and shows where the network saturates for
each virtual-channel count — the steady-state face of the paper's
``D^(1/B)`` factor (Scheideler-Vocking studied exactly this regime).

The continuous model is driven through :func:`repro.simulate` with a
``(net, num_sources, path_of)`` problem, the facade's open-loop form.

Run:  python examples/steady_state_traffic.py
"""

from repro import Butterfly, Table, simulate

N, L, HORIZON = 32, 6, 2000


def main() -> None:
    bf = Butterfly(N)

    def path_of(source, rng):
        return list(bf.path_edges(source, int(rng.integers(N))))

    table = Table(
        f"n={N} butterfly, L={L}, Bernoulli arrivals, {HORIZON} flit steps",
        ["B", "rate", "throughput (msgs/step)", "mean latency", "backlog trend"],
    )
    for B in (1, 2, 4):
        for rate in (0.04, 0.16, 0.32):
            res = simulate(
                (bf, N, path_of),
                model="continuous",
                B=B,
                seed=11,
                message_length=L,
                rate=rate,
                horizon=HORIZON,
                sample_every=100,
            )
            trend = "stable" if res.backlog_slope() < 0.05 else "GROWING"
            table.add_row([B, rate, res.throughput, res.mean_latency, trend])
    print(table.render())
    print()
    print(
        "Each doubling of B pushes the saturation knee out; past the "
        "knee, latency explodes and the backlog grows without bound."
    )


if __name__ == "__main__":
    main()
