#!/usr/bin/env python
"""Scenario: adaptive routing on a mesh under standard traffic patterns.

Evaluates deterministic XY routing against the Glass-Ni west-first turn
model on a 2-D mesh across the classic traffic battery.  The comparison
shows the real trade, not a strawman: on benign symmetric loads
(uniform, bit-complement) XY's perfect row/column separation wins, while
on *skewed* loads (traffic concentrated along a row) adaptivity routes
around the hot row and wins by ~2x.

It closes with the deadlock demonstration that motivates the whole
virtual-channel story: unrestricted minimal adaptivity can deadlock at
one channel; a turn rule or one extra virtual channel fixes it.

Run:  python examples/adaptive_mesh.py
"""

import numpy as np

from repro import KAryNCube, Table
from repro.routing.traffic import (
    bit_complement_traffic,
    hotspot_traffic,
    uniform_traffic,
)
from repro.sim.adaptive import AdaptiveMeshRouter

K, L = 6, 6


def main() -> None:
    mesh = KAryNCube(k=K, n=2, wrap=False)
    rng = np.random.default_rng(0)
    patterns = {
        "uniform": uniform_traffic(mesh, 2, rng),
        "hotspot(25% -> center)": hotspot_traffic(
            mesh, 2, hotspot=mesh.node((K // 2, K // 2)), fraction=0.25, rng=rng
        ),
        "bit-complement": bit_complement_traffic(mesh),
        "row-concentrated": [
            (mesh.node((x, 0)), mesh.node((min(K - 1, x + 2), K - 1)))
            for x in range(K - 1)
            for _ in range(4)
        ],
    }

    table = Table(
        f"{K}x{K} mesh, L={L}, B=1: mean makespan over 5 seeds",
        ["pattern", "XY (deterministic)", "west-first (adaptive)"],
    )
    for name, demands in patterns.items():
        spans = {"dimension": [], "west-first": []}
        for policy in spans:
            for seed in range(5):
                out = AdaptiveMeshRouter(mesh, 1, policy=policy, seed=seed).run(
                    demands, message_length=L
                )
                assert out.all_delivered
                spans[policy].append(out.result.makespan)
        table.add_row(
            [name, float(np.mean(spans["dimension"])), float(np.mean(spans["west-first"]))]
        )
    print(table.render())
    print()
    print(
        "XY's regularity wins on symmetric loads; west-first's freedom "
        "to turn early wins ~2x when traffic piles onto one row."
    )

    # Deadlock demonstration: four worms chasing around a square.
    a, b = mesh.node((0, 0)), mesh.node((1, 0))
    c, d = mesh.node((1, 1)), mesh.node((0, 1))
    cycle = [(a, c), (b, d), (c, a), (d, b)]
    print()
    print("Square-cycle workload (the classic wormhole deadlock):")
    for policy, B in [("fully-adaptive", 1), ("fully-adaptive", 2), ("west-first", 1)]:
        deadlocks = sum(
            AdaptiveMeshRouter(mesh, B, policy=policy, seed=s)
            .run(cycle, message_length=4)
            .result.deadlocked
            for s in range(30)
        )
        print(f"  {policy:>15} B={B}: {deadlocks}/30 runs deadlock")


if __name__ == "__main__":
    main()
