#!/usr/bin/env python
"""Scenario: offline batch scheduling with the Theorem 2.1.6 pipeline.

A batch-routing compiler for a fixed communication pattern: given a
leveled network and a set of message routes with congestion C and
dilation D, construct a provably block-free wormhole schedule by LLL
color refinement (multiplex size C -> B), then execute it on the exact
flit-level model.  Compares, per virtual-channel count B:

* the naive conflict-coloring baseline of footnote 5 (O((L+D) C D));
* the Theorem 2.1.6 schedule (O((L+D) C (D log D)^(1/B) / B));
* uncontrolled greedy injection (fast but with heavy blocking and no
  guarantee).

Run:  python examples/offline_scheduling.py
"""

import numpy as np

from repro import (
    Table,
    WormholeSimulator,
    bounds,
    execute_schedule,
    lll_schedule,
    naive_coloring_schedule,
)
from repro.network.random_networks import layered_network, random_walk_paths
from repro.routing.paths import congestion, dilation, paths_from_node_walks

WIDTH, DEPTH, MESSAGES = 14, 16, 260


def main() -> None:
    rng = np.random.default_rng(3)
    net = layered_network(WIDTH, DEPTH, 3, rng)
    walks = random_walk_paths(net, WIDTH, DEPTH, MESSAGES, rng)
    paths = paths_from_node_walks(net, walks)
    C, D = congestion(paths), dilation(paths)
    L = D
    print(
        f"Workload: {MESSAGES} messages, C = {C}, D = {D}, L = {L} on a "
        f"{WIDTH}-wide, {DEPTH}-deep leveled network"
    )

    naive = naive_coloring_schedule(paths, L)
    naive_run = execute_schedule(net, paths, naive.schedule, B=1)

    table = Table(
        "Schedules (all runs verified block-free where claimed)",
        [
            "B",
            "LLL classes",
            "LLL makespan",
            "naive makespan (B=1)",
            "greedy makespan",
            "greedy blocked steps",
            "theorem bound",
        ],
    )
    for B in (1, 2, 3, 4):
        build = lll_schedule(
            paths, message_length=L, B=B, rng=np.random.default_rng(B), mode="direct"
        )
        run = execute_schedule(net, paths, build.schedule, B=B)
        greedy = WormholeSimulator(net, B, seed=0).run(paths, message_length=L)
        table.add_row(
            [
                B,
                build.num_classes,
                run.makespan,
                naive_run.makespan,
                greedy.makespan,
                greedy.total_blocked_steps,
                bounds.general_upper_bound(L, C, D, B),
            ]
        )
    print()
    print(table.render())
    print()
    print(
        "The LLL schedule's makespan falls superlinearly as channels are "
        "added (classes shrink faster than 1/B), and unlike greedy "
        "injection it never blocks a single flit."
    )


if __name__ == "__main__":
    main()
