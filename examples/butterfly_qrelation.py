#!/usr/bin/env python
"""Scenario: many-to-many traffic on a butterfly fabric (Section 3.1).

A multistage interconnection network serving a q-relation — every input
sends q messages, every output receives q — is the canonical workload
for butterfly fabrics (Section 1.2).  This example runs the paper's
randomized two-pass algorithm across virtual-channel counts and sets it
against two reference points:

* a greedy one-pass wormhole router (the class the Section 3.2 lower
  bound covers), and
* circuit switching with per-edge capacity B (the Kruskal-Snir / Koch
  regime), which drops messages instead of buffering them.

Run:  python examples/butterfly_qrelation.py
"""

import numpy as np

from repro import (
    Butterfly,
    ButterflyRouter,
    Table,
    bounds,
    circuit_switch_butterfly,
    one_pass_route,
    random_q_relation,
)

N, Q, L = 256, 8, 16


def main() -> None:
    rng = np.random.default_rng(0)
    inst = random_q_relation(N, Q, rng)
    print(f"q-relation on an {N}-input butterfly: q = {Q}, L = {L} flits")

    table = Table(
        "Section 3.1 randomized two-pass algorithm",
        ["B", "rounds", "colors/round", "flit steps", "Thm 3.1.1 bound", "all delivered"],
    )
    for B in (1, 2, 3):
        router = ButterflyRouter(N, B=B, message_length=L, seed=1)
        out = router.route(inst)
        table.add_row(
            [
                B,
                out.num_rounds_used,
                out.rounds[0].num_colors,
                out.total_flit_steps,
                bounds.butterfly_upper_bound(L, Q, N, B),
                out.all_delivered,
            ]
        )
    print()
    print(table.render())

    table2 = Table(
        "Reference points at B = 2",
        ["system", "outcome"],
    )
    one = one_pass_route(N, inst, B=2, L=L, seed=0)
    table2.add_row(
        ["greedy one-pass wormhole", f"{one.measured_time} flit steps (all delivered)"]
    )
    bf = Butterfly(N)
    circuit = circuit_switch_butterfly(
        bf, inst.dests[: N], capacity=2, rng=np.random.default_rng(2)
    )
    table2.add_row(
        [
            "circuit switching (capacity 2)",
            f"{circuit.num_survivors}/{N} circuits locked down, rest dropped",
        ]
    )
    print()
    print(table2.render())
    print()
    print(
        "Wormhole routing with virtual channels delivers everything; "
        "circuit switching at the same capacity must drop a "
        "Theta(1/log^(1/B) n) fraction (Koch)."
    )


if __name__ == "__main__":
    main()
